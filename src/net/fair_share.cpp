#include "net/fair_share.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace gridvc::net {

namespace {
constexpr double kEps = 1e-3;  // bits/s; far below any meaningful WAN rate
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Allocation max_min_allocate(const Topology& topo, const std::vector<FlowDemand>& flows) {
  return max_min_allocate(topo, flows, {});
}

Allocation max_min_allocate(const Topology& topo, const std::vector<FlowDemand>& flows,
                            const std::vector<char>& link_up) {
  std::vector<FlowDemandRef> refs;
  refs.reserve(flows.size());
  for (const auto& f : flows) refs.push_back(FlowDemandRef{&f.path, f.cap, f.guarantee});
  AllocWorkspace ws;
  Allocation out;
  out.rates = max_min_allocate(topo, refs, link_up, ws);
  return out;
}

const std::vector<BitsPerSecond>& max_min_allocate(const Topology& topo,
                                                   std::span<const FlowDemandRef> flows,
                                                   const std::vector<char>& link_up,
                                                   AllocWorkspace& ws) {
  const std::size_t nflows = flows.size();
  const std::size_t nlinks = topo.link_count();
  GRIDVC_REQUIRE(link_up.empty() || link_up.size() == nlinks,
                 "link_up must be empty or one entry per link");
  ws.rates.assign(nflows, 0.0);
  if (nflows == 0) return ws.rates;

  for (const auto& f : flows) {
    GRIDVC_REQUIRE(f.path != nullptr && !f.path->empty(), "flow with empty path");
    for (LinkId l : *f.path) {
      GRIDVC_REQUIRE(l < nlinks, "flow path references unknown link");
    }
    GRIDVC_REQUIRE(f.guarantee >= 0.0, "negative guarantee");
  }

  ws.residual.assign(nlinks, 0.0);
  for (std::size_t l = 0; l < nlinks; ++l) {
    const bool up = link_up.empty() || link_up[l] != 0;
    ws.residual[l] = up ? topo.link(static_cast<LinkId>(l)).capacity : 0.0;
  }

  // Phase 1: rate guarantees. If a link is oversubscribed by guarantees
  // (should not happen under VC admission control) scale each crossing
  // flow's guarantee by the worst per-link factor on its path.
  ws.guarantee_load.assign(nlinks, 0.0);
  for (const auto& f : flows) {
    const double g = f.cap > 0.0 ? std::min(f.guarantee, f.cap) : f.guarantee;
    if (g <= 0.0) continue;
    for (LinkId l : *f.path) ws.guarantee_load[l] += g;
  }
  ws.link_scale.assign(nlinks, 1.0);
  for (std::size_t l = 0; l < nlinks; ++l) {
    if (ws.guarantee_load[l] > ws.residual[l]) {
      ws.link_scale[l] = ws.residual[l] / ws.guarantee_load[l];
    }
  }
  for (std::size_t i = 0; i < nflows; ++i) {
    double g = flows[i].cap > 0.0 ? std::min(flows[i].guarantee, flows[i].cap)
                                  : flows[i].guarantee;
    if (g <= 0.0) continue;
    double scale = 1.0;
    for (LinkId l : *flows[i].path) scale = std::min(scale, ws.link_scale[l]);
    ws.rates[i] = g * scale;
  }
  for (std::size_t i = 0; i < nflows; ++i) {
    if (ws.rates[i] <= 0.0) continue;
    for (LinkId l : *flows[i].path) {
      ws.residual[l] = std::max(0.0, ws.residual[l] - ws.rates[i]);
    }
  }

  // Phase 2: progressive filling of the residual capacity. The per-link
  // count of unfrozen crossing flows is built once and then maintained
  // incrementally: freezing a flow decrements exactly its own links.
  ws.active.assign(nflows, 0);
  ws.active_on_link.assign(nlinks, 0);
  std::size_t active_count = 0;
  for (std::size_t i = 0; i < nflows; ++i) {
    if (flows[i].cap > 0.0 && ws.rates[i] >= flows[i].cap - kEps) continue;
    ws.active[i] = 1;
    ++active_count;
    for (LinkId l : *flows[i].path) ++ws.active_on_link[l];
  }

  // Each iteration freezes at least one flow (cap hit) or saturates at
  // least one link, so the loop runs at most nflows + nlinks times.
  for (std::size_t iter = 0; iter < nflows + nlinks + 1 && active_count > 0; ++iter) {
    double delta = kInf;
    for (std::size_t l = 0; l < nlinks; ++l) {
      if (ws.active_on_link[l] == 0) continue;
      delta = std::min(delta, ws.residual[l] / static_cast<double>(ws.active_on_link[l]));
    }
    for (std::size_t i = 0; i < nflows; ++i) {
      if (!ws.active[i]) continue;
      if (flows[i].cap > 0.0) delta = std::min(delta, flows[i].cap - ws.rates[i]);
    }
    if (delta == kInf) break;
    delta = std::max(delta, 0.0);

    for (std::size_t i = 0; i < nflows; ++i) {
      if (!ws.active[i]) continue;
      ws.rates[i] += delta;
      for (LinkId l : *flows[i].path) {
        ws.residual[l] -= delta;
      }
    }

    // Freeze flows that hit their cap or a saturated link.
    bool froze = false;
    for (std::size_t i = 0; i < nflows; ++i) {
      if (!ws.active[i]) continue;
      bool saturated = flows[i].cap > 0.0 && ws.rates[i] >= flows[i].cap - kEps;
      if (!saturated) {
        for (LinkId l : *flows[i].path) {
          if (ws.residual[l] <= kEps) {
            saturated = true;
            break;
          }
        }
      }
      if (saturated) {
        ws.active[i] = 0;
        --active_count;
        for (LinkId l : *flows[i].path) --ws.active_on_link[l];
        froze = true;
      }
    }
    if (!froze) break;  // numerical stall guard
  }

  return ws.rates;
}

}  // namespace gridvc::net
