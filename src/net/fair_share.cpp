#include "net/fair_share.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace gridvc::net {

namespace {
constexpr double kEps = 1e-3;  // bits/s; far below any meaningful WAN rate
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Allocation max_min_allocate(const Topology& topo, const std::vector<FlowDemand>& flows) {
  return max_min_allocate(topo, flows, {});
}

Allocation max_min_allocate(const Topology& topo, const std::vector<FlowDemand>& flows,
                            const std::vector<char>& link_up) {
  const std::size_t nflows = flows.size();
  const std::size_t nlinks = topo.link_count();
  GRIDVC_REQUIRE(link_up.empty() || link_up.size() == nlinks,
                 "link_up must be empty or one entry per link");
  Allocation out;
  out.rates.assign(nflows, 0.0);
  if (nflows == 0) return out;

  for (const auto& f : flows) {
    GRIDVC_REQUIRE(!f.path.empty(), "flow with empty path");
    for (LinkId l : f.path) {
      GRIDVC_REQUIRE(l < nlinks, "flow path references unknown link");
    }
    GRIDVC_REQUIRE(f.guarantee >= 0.0, "negative guarantee");
  }

  std::vector<double> residual(nlinks);
  for (std::size_t l = 0; l < nlinks; ++l) {
    const bool up = link_up.empty() || link_up[l] != 0;
    residual[l] = up ? topo.link(static_cast<LinkId>(l)).capacity : 0.0;
  }

  // Phase 1: rate guarantees. If a link is oversubscribed by guarantees
  // (should not happen under VC admission control) scale each crossing
  // flow's guarantee by the worst per-link factor on its path.
  std::vector<double> guarantee_load(nlinks, 0.0);
  for (const auto& f : flows) {
    const double g = f.cap > 0.0 ? std::min(f.guarantee, f.cap) : f.guarantee;
    if (g <= 0.0) continue;
    for (LinkId l : f.path) guarantee_load[l] += g;
  }
  std::vector<double> link_scale(nlinks, 1.0);
  for (std::size_t l = 0; l < nlinks; ++l) {
    if (guarantee_load[l] > residual[l]) link_scale[l] = residual[l] / guarantee_load[l];
  }
  std::vector<double> base(nflows, 0.0);
  for (std::size_t i = 0; i < nflows; ++i) {
    double g = flows[i].cap > 0.0 ? std::min(flows[i].guarantee, flows[i].cap)
                                  : flows[i].guarantee;
    if (g <= 0.0) continue;
    double scale = 1.0;
    for (LinkId l : flows[i].path) scale = std::min(scale, link_scale[l]);
    base[i] = g * scale;
  }
  for (std::size_t i = 0; i < nflows; ++i) {
    out.rates[i] = base[i];
    for (LinkId l : flows[i].path) {
      residual[l] = std::max(0.0, residual[l] - base[i]);
    }
  }

  // Phase 2: progressive filling of the residual capacity.
  std::vector<bool> active(nflows, true);
  for (std::size_t i = 0; i < nflows; ++i) {
    if (flows[i].cap > 0.0 && out.rates[i] >= flows[i].cap - kEps) active[i] = false;
  }

  std::vector<std::size_t> active_on_link(nlinks, 0);
  auto recount = [&] {
    std::fill(active_on_link.begin(), active_on_link.end(), 0);
    for (std::size_t i = 0; i < nflows; ++i) {
      if (!active[i]) continue;
      for (LinkId l : flows[i].path) ++active_on_link[l];
    }
  };
  recount();

  // Each iteration freezes at least one flow (cap hit) or saturates at
  // least one link, so the loop runs at most nflows + nlinks times.
  for (std::size_t iter = 0; iter < nflows + nlinks + 1; ++iter) {
    double delta = kInf;
    for (std::size_t l = 0; l < nlinks; ++l) {
      if (active_on_link[l] == 0) continue;
      delta = std::min(delta, residual[l] / static_cast<double>(active_on_link[l]));
    }
    bool any_active = false;
    for (std::size_t i = 0; i < nflows; ++i) {
      if (!active[i]) continue;
      any_active = true;
      if (flows[i].cap > 0.0) delta = std::min(delta, flows[i].cap - out.rates[i]);
    }
    if (!any_active || delta == kInf) break;
    delta = std::max(delta, 0.0);

    for (std::size_t i = 0; i < nflows; ++i) {
      if (!active[i]) continue;
      out.rates[i] += delta;
      for (LinkId l : flows[i].path) {
        residual[l] -= delta;
      }
    }

    // Freeze flows that hit their cap or a saturated link.
    bool froze = false;
    for (std::size_t i = 0; i < nflows; ++i) {
      if (!active[i]) continue;
      bool saturated = flows[i].cap > 0.0 && out.rates[i] >= flows[i].cap - kEps;
      if (!saturated) {
        for (LinkId l : flows[i].path) {
          if (residual[l] <= kEps) {
            saturated = true;
            break;
          }
        }
      }
      if (saturated) {
        active[i] = false;
        froze = true;
      }
    }
    if (!froze) break;  // numerical stall guard
    recount();
  }

  return out;
}

}  // namespace gridvc::net
