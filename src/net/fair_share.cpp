#include "net/fair_share.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "obs/profiler.hpp"

namespace gridvc::net {

namespace {
constexpr double kEps = 1e-3;  // bits/s; far below any meaningful WAN rate
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

Allocation max_min_allocate(const Topology& topo, const std::vector<FlowDemand>& flows) {
  return max_min_allocate(topo, flows, {});
}

Allocation max_min_allocate(const Topology& topo, const std::vector<FlowDemand>& flows,
                            const std::vector<char>& link_up) {
  std::vector<FlowDemandRef> refs;
  refs.reserve(flows.size());
  for (const auto& f : flows) refs.push_back(FlowDemandRef{&f.path, f.cap, f.guarantee});
  AllocWorkspace ws;
  Allocation out;
  out.rates = max_min_allocate(topo, refs, link_up, ws);
  return out;
}

const std::vector<BitsPerSecond>& max_min_allocate(const Topology& topo,
                                                   std::span<const FlowDemandRef> flows,
                                                   const std::vector<char>& link_up,
                                                   AllocWorkspace& ws) {
  GRIDVC_PROF_ZONE("net.max_min_allocate");
  const std::size_t nflows = flows.size();
  const std::size_t nlinks = topo.link_count();
  GRIDVC_REQUIRE(link_up.empty() || link_up.size() == nlinks,
                 "link_up must be empty or one entry per link");
  ws.rates.assign(nflows, 0.0);
  if (nflows == 0) return ws.rates;

  // Flatten every path into one CSR index (and validate while copying):
  // after this pass no loop touches the per-flow std::vector<LinkId>
  // storage again — path walks are contiguous scans of ws.path_lnk.
  ws.path_off.resize(nflows + 1);
  ws.cap_limit.resize(nflows);
  std::size_t total_links = 0;
  for (std::size_t i = 0; i < nflows; ++i) {
    const FlowDemandRef& f = flows[i];
    GRIDVC_REQUIRE(f.path != nullptr && !f.path->empty(), "flow with empty path");
    GRIDVC_REQUIRE(f.guarantee >= 0.0, "negative guarantee");
    ws.path_off[i] = static_cast<std::uint32_t>(total_links);
    total_links += f.path->size();
    ws.cap_limit[i] = f.cap > 0.0 ? f.cap : kInf;
  }
  ws.path_off[nflows] = static_cast<std::uint32_t>(total_links);
  ws.path_lnk.resize(total_links);
  for (std::size_t i = 0; i < nflows; ++i) {
    std::uint32_t off = ws.path_off[i];
    for (LinkId l : *flows[i].path) {
      GRIDVC_REQUIRE(l < nlinks, "flow path references unknown link");
      ws.path_lnk[off++] = static_cast<std::uint32_t>(l);
    }
  }

  ws.residual.assign(nlinks, 0.0);
  for (std::size_t l = 0; l < nlinks; ++l) {
    const bool up = link_up.empty() || link_up[l] != 0;
    ws.residual[l] = up ? topo.link(static_cast<LinkId>(l)).capacity : 0.0;
  }

  // Phase 1: rate guarantees. If a link is oversubscribed by guarantees
  // (should not happen under VC admission control) scale each crossing
  // flow's guarantee by the worst per-link factor on its path.
  ws.guarantee_load.assign(nlinks, 0.0);
  for (std::size_t i = 0; i < nflows; ++i) {
    const double g = std::min(flows[i].guarantee, ws.cap_limit[i]);
    if (g <= 0.0) continue;
    for (std::uint32_t k = ws.path_off[i]; k < ws.path_off[i + 1]; ++k) {
      ws.guarantee_load[ws.path_lnk[k]] += g;
    }
  }
  ws.link_scale.assign(nlinks, 1.0);
  for (std::size_t l = 0; l < nlinks; ++l) {
    if (ws.guarantee_load[l] > ws.residual[l]) {
      ws.link_scale[l] = ws.residual[l] / ws.guarantee_load[l];
    }
  }
  for (std::size_t i = 0; i < nflows; ++i) {
    const double g = std::min(flows[i].guarantee, ws.cap_limit[i]);
    if (g <= 0.0) continue;
    double scale = 1.0;
    for (std::uint32_t k = ws.path_off[i]; k < ws.path_off[i + 1]; ++k) {
      scale = std::min(scale, ws.link_scale[ws.path_lnk[k]]);
    }
    ws.rates[i] = g * scale;
  }
  for (std::size_t i = 0; i < nflows; ++i) {
    if (ws.rates[i] <= 0.0) continue;
    for (std::uint32_t k = ws.path_off[i]; k < ws.path_off[i + 1]; ++k) {
      const std::uint32_t l = ws.path_lnk[k];
      ws.residual[l] = std::max(0.0, ws.residual[l] - ws.rates[i]);
    }
  }

  // Phase 2: progressive filling of the residual capacity. Unfrozen
  // flows live in a dense, index-ordered list (ws.active_idx), so every
  // fill iteration scans only the survivors; the per-link count of
  // unfrozen crossing flows is built once and maintained incrementally
  // as flows freeze. The freeze pass compacts the dense list in place,
  // preserving index order so the arithmetic sequence is identical to
  // the scalar formulation.
  ws.active.assign(nflows, 0);
  ws.active_on_link.assign(nlinks, 0);
  ws.active_idx.clear();
  for (std::size_t i = 0; i < nflows; ++i) {
    if (ws.rates[i] >= ws.cap_limit[i] - kEps) continue;  // inf cap never trips
    ws.active[i] = 1;
    ws.active_idx.push_back(static_cast<std::uint32_t>(i));
    for (std::uint32_t k = ws.path_off[i]; k < ws.path_off[i + 1]; ++k) {
      ++ws.active_on_link[ws.path_lnk[k]];
    }
  }

  // Each iteration freezes at least one flow (cap hit) or saturates at
  // least one link, so the loop runs at most nflows + nlinks times.
  for (std::size_t iter = 0; iter < nflows + nlinks + 1 && !ws.active_idx.empty();
       ++iter) {
    double delta = kInf;
    for (std::size_t l = 0; l < nlinks; ++l) {
      if (ws.active_on_link[l] == 0) continue;
      delta = std::min(delta, ws.residual[l] / static_cast<double>(ws.active_on_link[l]));
    }
    for (const std::uint32_t i : ws.active_idx) {
      delta = std::min(delta, ws.cap_limit[i] - ws.rates[i]);  // inf - r = inf
    }
    if (delta == kInf) break;
    delta = std::max(delta, 0.0);

    for (const std::uint32_t i : ws.active_idx) {
      ws.rates[i] += delta;
      for (std::uint32_t k = ws.path_off[i]; k < ws.path_off[i + 1]; ++k) {
        ws.residual[ws.path_lnk[k]] -= delta;
      }
    }

    // Freeze flows that hit their cap or a saturated link; survivors are
    // compacted to the front of the dense list in stable order.
    std::size_t w = 0;
    bool froze = false;
    for (const std::uint32_t i : ws.active_idx) {
      bool saturated = ws.rates[i] >= ws.cap_limit[i] - kEps;
      if (!saturated) {
        for (std::uint32_t k = ws.path_off[i]; k < ws.path_off[i + 1]; ++k) {
          if (ws.residual[ws.path_lnk[k]] <= kEps) {
            saturated = true;
            break;
          }
        }
      }
      if (saturated) {
        ws.active[i] = 0;
        for (std::uint32_t k = ws.path_off[i]; k < ws.path_off[i + 1]; ++k) {
          --ws.active_on_link[ws.path_lnk[k]];
        }
        froze = true;
      } else {
        ws.active_idx[w++] = i;
      }
    }
    ws.active_idx.resize(w);
    if (!froze) break;  // numerical stall guard
  }

  return ws.rates;
}

}  // namespace gridvc::net
