#include "net/fault_injector.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace gridvc::net {

FaultInjector::FaultInjector(Network& network, FaultInjectorConfig config, Rng rng,
                             LinkFn on_link_down, LinkFn on_link_up)
    : network_(network),
      config_(std::move(config)),
      rng_(rng),
      on_link_down_(std::move(on_link_down)),
      on_link_up_(std::move(on_link_up)) {
  if (config_.mtbf <= 0.0 || config_.targets.empty()) return;  // disabled
  GRIDVC_REQUIRE(config_.mttr > 0.0, "fault injector mttr must be positive");
  GRIDVC_REQUIRE(config_.horizon > config_.start_after,
                 "fault injector horizon must lie past start_after");
  for (LinkId l : config_.targets) {
    GRIDVC_REQUIRE(l < network_.topology().link_count(),
                   "fault injector target references unknown link");
  }
  pending_.resize(config_.targets.size());
  for (std::size_t i = 0; i < config_.targets.size(); ++i) {
    schedule_failure(i, config_.start_after);
  }
}

void FaultInjector::schedule_failure(std::size_t target_index, Seconds not_before) {
  const Seconds when =
      std::max(not_before, network_.simulator().now()) + rng_.exponential(config_.mtbf);
  if (when >= config_.horizon) return;  // series ends; queue can drain
  pending_[target_index] =
      network_.simulator().schedule_at(when, [this, target_index] {
        fail_link(target_index);
      });
}

FaultInjector::~FaultInjector() {
  // The injector may die before the run drains (scoped injectors in
  // tests, early teardown); pending events would otherwise fire into a
  // dangling `this`.
  for (auto& handle : pending_) handle.cancel();
}

void FaultInjector::fail_link(std::size_t target_index) {
  const LinkId link = config_.targets[target_index];
  if (!network_.link_up(link)) {
    // Someone else (another injector, a scripted outage) already holds
    // the link down. Failing it again would double-count the outage and
    // our repair would cut their window short — skip this cycle and try
    // again after it heals.
    schedule_failure(target_index, network_.simulator().now());
    return;
  }
  ++stats_.failures;
  network_.set_link_state(link, false);
  if (on_link_down_) on_link_down_(link);
  const Seconds outage = rng_.exponential(config_.mttr);
  pending_[target_index] =
      network_.simulator().schedule_in(outage, [this, target_index] {
        repair_link(target_index);
      });
}

void FaultInjector::repair_link(std::size_t target_index) {
  const LinkId link = config_.targets[target_index];
  ++stats_.repairs;
  network_.set_link_state(link, true);
  if (on_link_up_) on_link_up_(link);
  schedule_failure(target_index, network_.simulator().now());
}

}  // namespace gridvc::net
