// Shortest-path routing.
//
// IP-routed service: Dijkstra over propagation delay (BGP-style "you get
// what the IGP gives you"). The virtual-circuit path computation in
// src/vc/ builds on the same primitive but adds bandwidth-availability
// constraints and link pruning.
#pragma once

#include <functional>
#include <optional>

#include "net/topology.hpp"

namespace gridvc::net {

/// Optional per-link filter; return false to exclude a link from the search.
using LinkFilter = std::function<bool(LinkId)>;

/// Least-delay path from src to dst, or nullopt if unreachable.
/// Ties are broken deterministically by smaller predecessor link id.
std::optional<Path> shortest_path(const Topology& topo, NodeId src, NodeId dst,
                                  const LinkFilter& usable = nullptr);

/// Least-hop path (unit weights); used by tests and the inter-domain VC
/// controller's per-domain segment search.
std::optional<Path> min_hop_path(const Topology& topo, NodeId src, NodeId dst,
                                 const LinkFilter& usable = nullptr);

}  // namespace gridvc::net
