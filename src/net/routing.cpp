#include "net/routing.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <vector>

#include "common/error.hpp"

namespace gridvc::net {

namespace {

std::optional<Path> dijkstra(const Topology& topo, NodeId src, NodeId dst,
                             const LinkFilter& usable,
                             const std::function<double(const Link&)>& weight) {
  GRIDVC_REQUIRE(src < topo.node_count() && dst < topo.node_count(),
                 "routing endpoint out of range");
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr LinkId kNoLink = std::numeric_limits<LinkId>::max();

  std::vector<double> dist(topo.node_count(), kInf);
  std::vector<LinkId> via(topo.node_count(), kNoLink);
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;

  dist[src] = 0.0;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;  // stale entry
    if (u == dst) break;
    for (LinkId lid : topo.outgoing(u)) {
      if (usable && !usable(lid)) continue;
      const Link& l = topo.link(lid);
      const double nd = d + weight(l);
      const NodeId v = l.to;
      // Strict improvement, or equal cost with a smaller link id: the tie
      // break makes path selection deterministic across platforms.
      if (nd < dist[v] || (nd == dist[v] && via[v] != kNoLink && lid < via[v])) {
        dist[v] = nd;
        via[v] = lid;
        heap.emplace(nd, v);
      }
    }
  }

  if (src != dst && via[dst] == kNoLink) return std::nullopt;
  Path path;
  for (NodeId cur = dst; cur != src;) {
    const LinkId lid = via[cur];
    path.push_back(lid);
    cur = topo.link(lid).from;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

std::optional<Path> shortest_path(const Topology& topo, NodeId src, NodeId dst,
                                  const LinkFilter& usable) {
  return dijkstra(topo, src, dst, usable, [](const Link& l) {
    // Delay plus an infinitesimal hop cost so zero-delay meshes still
    // prefer fewer hops.
    return l.delay + 1e-9;
  });
}

std::optional<Path> min_hop_path(const Topology& topo, NodeId src, NodeId dst,
                                 const LinkFilter& usable) {
  return dijkstra(topo, src, dst, usable, [](const Link&) { return 1.0; });
}

}  // namespace gridvc::net
