#include "net/snmp.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gridvc::net {

SnmpCollector::SnmpCollector(Network& network, std::vector<LinkId> links,
                             Seconds bin_seconds, Seconds start)
    : network_(network), links_(std::move(links)) {
  GRIDVC_REQUIRE(bin_seconds > 0.0, "SNMP bin width must be positive");
  GRIDVC_REQUIRE(!links_.empty(), "SNMP collector needs at least one link");
  series_.resize(links_.size());
  last_counter_.assign(links_.size(), 0.0);
  for (std::size_t i = 0; i < links_.size(); ++i) {
    series_[i].link = links_[i];
    series_[i].bin_seconds = bin_seconds;
    series_[i].first_bin_start = start;
    last_counter_[i] = 0.0;
  }
  // The first tick fires one bin after `start` and closes the first bin.
  tick_ = network_.simulator().schedule_periodic(start + bin_seconds, bin_seconds, [this] {
    sample();
    return true;
  });
}

SnmpCollector::~SnmpCollector() { tick_.cancel(); }

void SnmpCollector::stop() { tick_.cancel(); }

void SnmpCollector::sample() {
  for (std::size_t i = 0; i < links_.size(); ++i) {
    const double counter = network_.link_bytes(links_[i]);
    series_[i].bins.push_back(counter - last_counter_[i]);
    last_counter_[i] = counter;
  }
}

const SnmpSeries& SnmpCollector::series(LinkId link) const {
  const auto it = std::find(links_.begin(), links_.end(), link);
  if (it == links_.end()) {
    throw gridvc::NotFoundError("link not monitored by this SNMP collector");
  }
  return series_[static_cast<std::size_t>(it - links_.begin())];
}

}  // namespace gridvc::net
