// Background ("general-purpose") traffic generator.
//
// The paper's §VII-C finds ESnet backbone links lightly loaded: GridFTP
// α flows dominate total link bytes (Table XI) while the remaining traffic
// neither correlates with nor affects the transfers (Table XII). To
// reproduce that, each backbone path carries a Poisson stream of small
// best-effort flows whose aggregate offered load is a configurable (small)
// fraction of link capacity.
#pragma once

#include <vector>

#include "common/distributions.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "net/network.hpp"

namespace gridvc::net {

struct CrossTrafficConfig {
  /// Mean flow inter-arrival time.
  Seconds mean_interarrival = 1.0;
  /// Flow size distribution (bytes). Defaults to a mouse-heavy lognormal.
  DistributionPtr size_distribution;
  /// Per-flow rate cap (models access-link speed of general-purpose
  /// sources); <= 0 for uncapped.
  BitsPerSecond flow_cap = 0.0;
};

/// Generates background flows along a fixed path until stopped.
class CrossTrafficSource {
 public:
  /// Flows follow `path` through `network`. Arrivals start at time
  /// `start`. The source holds a copy of `rng` forked for independence.
  CrossTrafficSource(Network& network, Path path, CrossTrafficConfig config, Rng rng,
                     Seconds start = 0.0);
  ~CrossTrafficSource();
  CrossTrafficSource(const CrossTrafficSource&) = delete;
  CrossTrafficSource& operator=(const CrossTrafficSource&) = delete;

  /// Stop generating new arrivals (in-flight flows drain normally).
  void stop();

  /// Flows injected so far.
  std::size_t flows_started() const { return flows_started_; }
  /// Total bytes offered so far.
  double bytes_offered() const { return bytes_offered_; }

 private:
  void schedule_next();

  Network& network_;
  Path path_;
  CrossTrafficConfig config_;
  Rng rng_;
  std::size_t flows_started_ = 0;
  double bytes_offered_ = 0.0;
  bool stopped_ = false;
  sim::EventHandle next_arrival_;
};

}  // namespace gridvc::net
