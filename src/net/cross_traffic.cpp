#include "net/cross_traffic.hpp"

#include <memory>

#include "common/error.hpp"

namespace gridvc::net {

CrossTrafficSource::CrossTrafficSource(Network& network, Path path,
                                       CrossTrafficConfig config, Rng rng, Seconds start)
    : network_(network), path_(std::move(path)), config_(std::move(config)), rng_(rng) {
  GRIDVC_REQUIRE(!path_.empty(), "cross-traffic path must not be empty");
  GRIDVC_REQUIRE(config_.mean_interarrival > 0.0, "mean inter-arrival must be positive");
  if (!config_.size_distribution) {
    // Default: mouse-dominated web-like mix, median ~100 KB, heavy tail.
    config_.size_distribution =
        std::make_shared<TruncatedLogNormal>(100.0 * 1024.0, 2.0, 1024.0, 1e9);
  }
  next_arrival_ = network_.simulator().schedule_at(
      start + rng_.exponential(config_.mean_interarrival), [this] { schedule_next(); });
}

CrossTrafficSource::~CrossTrafficSource() { stop(); }

void CrossTrafficSource::stop() {
  stopped_ = true;
  next_arrival_.cancel();
}

void CrossTrafficSource::schedule_next() {
  if (stopped_) return;
  const double raw = config_.size_distribution->sample(rng_);
  const Bytes size = static_cast<Bytes>(std::max(1.0, raw));
  FlowOptions opts;
  opts.cap = config_.flow_cap;
  network_.start_flow(path_, size, opts, nullptr);
  ++flows_started_;
  bytes_offered_ += static_cast<double>(size);
  next_arrival_ = network_.simulator().schedule_in(
      rng_.exponential(config_.mean_interarrival), [this] { schedule_next(); });
}

}  // namespace gridvc::net
