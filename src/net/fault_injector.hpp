// Stochastic link fault injection.
//
// The paper's motivation for circuits includes surviving the WAN's
// operational reality: links flap. The injector drives Network's link
// up/down state from per-link exponential failure/repair processes
// (MTBF/MTTR), the standard availability model for optical WAN spans.
// Everything downstream — flow aborts, circuit failure and re-signaling,
// GridFTP restart markers — reacts through the normal event path, so a
// faulty run is exactly reproducible from its seed.
//
// Failures are only scheduled before `horizon`; repairs always run, so
// every injected outage heals and the event queue drains naturally once
// the workload finishes.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace gridvc::net {

struct FaultInjectorConfig {
  std::vector<LinkId> targets;  ///< links subject to failure
  Seconds mtbf = 0.0;           ///< mean time between failures; <= 0 disables
  Seconds mttr = 60.0;          ///< mean time to repair; must be > 0
  Seconds start_after = 0.0;    ///< no failures before this time
  Seconds horizon = 0.0;        ///< no failures at or after this time
};

/// Schedules failure/repair cycles on a set of links. Construction arms
/// the first failure per target; the injector must outlive the run.
class FaultInjector {
 public:
  using LinkFn = std::function<void(LinkId)>;

  struct Stats {
    std::uint64_t failures = 0;
    std::uint64_t repairs = 0;
  };

  /// `on_link_down` / `on_link_up` (either may be null) fire after the
  /// Network's state change, so callbacks observe the post-failure world —
  /// this is where the IDC's handle_link_failure/restore_link hook in.
  FaultInjector(Network& network, FaultInjectorConfig config, Rng rng,
                LinkFn on_link_down = nullptr, LinkFn on_link_up = nullptr);
  /// Cancels any in-flight failure/repair events so the injector can be
  /// destroyed before the simulation drains.
  ~FaultInjector();
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const Stats& stats() const { return stats_; }
  const FaultInjectorConfig& config() const { return config_; }

 private:
  void schedule_failure(std::size_t target_index, Seconds not_before);
  void fail_link(std::size_t target_index);
  void repair_link(std::size_t target_index);

  Network& network_;
  FaultInjectorConfig config_;
  Rng rng_;
  LinkFn on_link_down_;
  LinkFn on_link_up_;
  Stats stats_;
  std::vector<sim::EventHandle> pending_;  ///< one in-flight event per target
};

}  // namespace gridvc::net
