// Max-min fair bandwidth allocation with rate guarantees.
//
// The flow-level network model assigns each active flow a rate via
// progressive filling:
//
//   1. Guaranteed (virtual-circuit) flows are allocated
//      min(guarantee, demand cap) off the top of each link they traverse —
//      that is the OSCARS rate guarantee.
//   2. Remaining capacity is shared max-min among all flows (guaranteed
//      flows may also claim idle headroom beyond their guarantee, matching
//      the paper's observation that a VC "allows for shared usage of
//      assigned capacity" — idle VC bandwidth is not wasted).
//
// Each flow can carry a demand cap (from the TCP window model or the
// sending server's per-transfer share); a flow never receives more than
// its cap.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "net/topology.hpp"

namespace gridvc::net {

/// Input to the allocator: one entry per active flow.
struct FlowDemand {
  Path path;                      ///< directed links traversed
  BitsPerSecond cap = 0.0;        ///< demand ceiling (<=0 means unbounded)
  BitsPerSecond guarantee = 0.0;  ///< reserved VC rate (0 for best-effort)
};

/// Borrowed-path demand for the zero-allocation hot path: the caller
/// owns the Path storage and keeps it alive across the call (Network's
/// ActiveFlow records do exactly that).
struct FlowDemandRef {
  const Path* path = nullptr;
  BitsPerSecond cap = 0.0;
  BitsPerSecond guarantee = 0.0;
};

/// Computed allocation, one rate per input flow (same order).
struct Allocation {
  std::vector<BitsPerSecond> rates;
};

/// Caller-owned scratch state for max_min_allocate. Every per-link and
/// per-flow working array lives here and is resized with assign(), so a
/// reused workspace performs zero heap allocations per call once its
/// vectors have grown to the steady-state flow/link counts (pinned by
/// the allocator microbenchmark). Treat the members as opaque except
/// `rates`, which holds the result of the last call.
///
/// The layout is structure-of-arrays: per-flow state (rates, cap limits,
/// active flags) and per-link state (residual, counts) live in flat
/// parallel arrays, and every flow's path is flattened into one CSR
/// index (`path_off`/`path_lnk`) built once per call — the fill and
/// freeze loops walk contiguous memory instead of chasing a separate
/// heap-allocated std::vector<LinkId> per flow per iteration.
struct AllocWorkspace {
  std::vector<BitsPerSecond> rates;  ///< output: one rate per input flow

  // Internal scratch (sized per call).
  std::vector<double> residual;        // per link: unallocated capacity
  std::vector<double> guarantee_load;  // per link: sum of guarantees
  std::vector<double> link_scale;      // per link: oversubscription scale
  std::vector<double> cap_limit;       // per flow: cap, +inf when unbounded
  std::vector<char> active;            // per flow: still filling
  std::vector<std::uint32_t> active_on_link;  // per link: unfrozen crossers
  std::vector<std::uint32_t> active_idx;      // dense index of active flows
  std::vector<std::uint32_t> path_off;        // CSR offsets, nflows + 1
  std::vector<std::uint32_t> path_lnk;        // CSR flattened link ids
};

/// Compute the allocation for `flows` over `topo`.
///
/// Guarantees are honored first (clipped to link capacity if operators
/// oversubscribed a link — the allocator scales guarantees down
/// proportionally on any link where their sum exceeds capacity, which the
/// admission control in src/vc/ prevents in normal operation). The residual
/// capacity is then distributed by progressive filling: all unfrozen flows
/// receive equal increments until they hit their cap or a saturated link.
Allocation max_min_allocate(const Topology& topo, const std::vector<FlowDemand>& flows);

/// As above, with per-link up/down state: `link_up` holds one entry per
/// link (nonzero = up). A down link contributes zero capacity, so crossing
/// flows freeze at rate 0 and any guarantees over it scale to nothing. An
/// empty vector means every link is up.
Allocation max_min_allocate(const Topology& topo, const std::vector<FlowDemand>& flows,
                            const std::vector<char>& link_up);

/// Allocation hot path: identical semantics to the vector overloads, but
/// paths are borrowed and all scratch state lives in `ws` — zero heap
/// allocations per call once the workspace is warm. Paths are flattened
/// into the workspace's CSR index up front, progressive filling iterates
/// a dense active-flow list that compacts in stable order as flows
/// freeze, and per-link active-flow counts are maintained incrementally
/// (decrementing just the frozen flow's links) instead of recounting
/// every flow's path each iteration. Returns `ws.rates`.
const std::vector<BitsPerSecond>& max_min_allocate(const Topology& topo,
                                                   std::span<const FlowDemandRef> flows,
                                                   const std::vector<char>& link_up,
                                                   AllocWorkspace& ws);

}  // namespace gridvc::net
