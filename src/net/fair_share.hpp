// Max-min fair bandwidth allocation with rate guarantees.
//
// The flow-level network model assigns each active flow a rate via
// progressive filling:
//
//   1. Guaranteed (virtual-circuit) flows are allocated
//      min(guarantee, demand cap) off the top of each link they traverse —
//      that is the OSCARS rate guarantee.
//   2. Remaining capacity is shared max-min among all flows (guaranteed
//      flows may also claim idle headroom beyond their guarantee, matching
//      the paper's observation that a VC "allows for shared usage of
//      assigned capacity" — idle VC bandwidth is not wasted).
//
// Each flow can carry a demand cap (from the TCP window model or the
// sending server's per-transfer share); a flow never receives more than
// its cap.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "net/topology.hpp"

namespace gridvc::net {

/// Input to the allocator: one entry per active flow.
struct FlowDemand {
  Path path;                      ///< directed links traversed
  BitsPerSecond cap = 0.0;        ///< demand ceiling (<=0 means unbounded)
  BitsPerSecond guarantee = 0.0;  ///< reserved VC rate (0 for best-effort)
};

/// Computed allocation, one rate per input flow (same order).
struct Allocation {
  std::vector<BitsPerSecond> rates;
};

/// Compute the allocation for `flows` over `topo`.
///
/// Guarantees are honored first (clipped to link capacity if operators
/// oversubscribed a link — the allocator scales guarantees down
/// proportionally on any link where their sum exceeds capacity, which the
/// admission control in src/vc/ prevents in normal operation). The residual
/// capacity is then distributed by progressive filling: all unfrozen flows
/// receive equal increments until they hit their cap or a saturated link.
Allocation max_min_allocate(const Topology& topo, const std::vector<FlowDemand>& flows);

/// As above, with per-link up/down state: `link_up` holds one entry per
/// link (nonzero = up). A down link contributes zero capacity, so crossing
/// flows freeze at rate 0 and any guarantees over it scale to nothing. An
/// empty vector means every link is up.
Allocation max_min_allocate(const Topology& topo, const std::vector<FlowDemand>& flows,
                            const std::vector<char>& link_up);

}  // namespace gridvc::net
