#include "vc/bandwidth_calendar.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gridvc::vc {

namespace {
// Reserved-rate comparisons tolerate this much float noise (bits/s).
constexpr double kRateEps = 1e-3;
}  // namespace

void BandwidthProfile::add(Seconds start, Seconds end, BitsPerSecond rate) {
  GRIDVC_REQUIRE(start < end, "reservation window inverted");
  GRIDVC_REQUIRE(rate > 0.0, "reservation rate must be positive");
  const auto s = deltas_.emplace(start, 0.0).first;
  s->second += rate;
  // Erase only on exact cancellation: an |delta| < eps test here would
  // drop a legitimate tiny residual when accumulated +/-rate pairs land
  // near but not at zero.
  if (s->second == 0.0) deltas_.erase(s);
  const auto e = deltas_.emplace(end, 0.0).first;
  e->second -= rate;
  if (e->second == 0.0) deltas_.erase(e);
  cache_valid_ = false;
}

void BandwidthProfile::remove(Seconds start, Seconds end, BitsPerSecond rate) {
  GRIDVC_REQUIRE(start < end, "reservation window inverted");
  const auto s = deltas_.emplace(start, 0.0).first;
  s->second -= rate;
  if (s->second == 0.0) deltas_.erase(s);
  const auto e = deltas_.emplace(end, 0.0).first;
  e->second += rate;
  if (e->second == 0.0) deltas_.erase(e);
  cache_valid_ = false;
}

void BandwidthProfile::ensure_cache() const {
  if (cache_valid_) return;
  cache_times_.clear();
  cache_levels_.clear();
  cache_times_.reserve(deltas_.size());
  cache_levels_.reserve(deltas_.size());
  double level = 0.0;
  for (const auto& [when, delta] : deltas_) {
    level += delta;
    cache_times_.push_back(when);
    cache_levels_.push_back(level);
  }
  cache_valid_ = true;
}

BitsPerSecond BandwidthProfile::peak(Seconds start, Seconds end) const {
  GRIDVC_REQUIRE(start <= end, "peak window inverted");
  ensure_cache();
  // Entry level: the last change at or before `start` is in force during
  // the window (a block [start, x) applies from `start` inclusive, and a
  // block [y, start) has already ended at `start`). Then sweep only the
  // change points strictly inside (start, end).
  const auto first_after =
      std::upper_bound(cache_times_.begin(), cache_times_.end(), start);
  std::size_t i = static_cast<std::size_t>(first_after - cache_times_.begin());
  double best = i > 0 ? cache_levels_[i - 1] : 0.0;
  for (; i < cache_times_.size() && cache_times_[i] < end; ++i) {
    best = std::max(best, cache_levels_[i]);
  }
  return std::max(best, 0.0);
}

BitsPerSecond BandwidthProfile::at(Seconds t) const {
  ensure_cache();
  const auto first_after = std::upper_bound(cache_times_.begin(), cache_times_.end(), t);
  if (first_after == cache_times_.begin()) return 0.0;
  const std::size_t i = static_cast<std::size_t>(first_after - cache_times_.begin());
  return std::max(cache_levels_[i - 1], 0.0);
}

bool BandwidthProfile::empty() const { return deltas_.empty(); }

BandwidthCalendar::BandwidthCalendar(const net::Topology& topo, double reservable_fraction)
    : topo_(topo), reservable_fraction_(reservable_fraction), profiles_(topo.link_count()) {
  GRIDVC_REQUIRE(reservable_fraction > 0.0 && reservable_fraction <= 1.0,
                 "reservable fraction must be in (0, 1]");
}

BitsPerSecond BandwidthCalendar::available(net::LinkId link, Seconds start,
                                           Seconds end) const {
  GRIDVC_REQUIRE(link < profiles_.size(), "link id out of range");
  const BitsPerSecond reservable = topo_.link(link).capacity * reservable_fraction_;
  return std::max(0.0, reservable - profiles_[link].peak(start, end));
}

bool BandwidthCalendar::fits(const net::Path& path, Seconds start, Seconds end,
                             BitsPerSecond rate) const {
  GRIDVC_REQUIRE(!path.empty(), "fits() of empty path");
  for (net::LinkId l : path) {
    if (available(l, start, end) + kRateEps < rate) return false;
  }
  return true;
}

ReservationId BandwidthCalendar::book(const net::Path& path, Seconds start, Seconds end,
                                      BitsPerSecond rate) {
  GRIDVC_REQUIRE(fits(path, start, end, rate), "booking does not fit the calendar");
  for (net::LinkId l : path) profiles_[l].add(start, end, rate);
  const ReservationId id = next_id_++;
  bookings_.emplace(id, Booking{path, start, end, rate});
  return id;
}

void BandwidthCalendar::release(ReservationId id) {
  const auto it = bookings_.find(id);
  GRIDVC_REQUIRE(it != bookings_.end(), "release of unknown booking");
  const Booking& b = it->second;
  for (net::LinkId l : b.path) profiles_[l].remove(b.start, b.end, b.rate);
  bookings_.erase(it);
}

void BandwidthCalendar::truncate(ReservationId id, Seconds new_end) {
  const auto it = bookings_.find(id);
  GRIDVC_REQUIRE(it != bookings_.end(), "truncate of unknown booking");
  Booking& b = it->second;
  GRIDVC_REQUIRE(new_end >= b.start && new_end <= b.end, "truncate outside booking window");
  if (new_end == b.end) return;
  if (new_end == b.start) {
    release(id);
    return;
  }
  for (net::LinkId l : b.path) {
    profiles_[l].remove(b.start, b.end, b.rate);
    profiles_[l].add(b.start, new_end, b.rate);
  }
  b.end = new_end;
}

}  // namespace gridvc::vc
