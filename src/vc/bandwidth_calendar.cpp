#include "vc/bandwidth_calendar.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "obs/profiler.hpp"

namespace gridvc::vc {

namespace {
// Reserved-rate comparisons tolerate this much float noise (bits/s).
constexpr double kRateEps = 1e-3;
constexpr Seconds kNegInf = -std::numeric_limits<Seconds>::infinity();

// Fetch every cache line of a node as soon as its identity is known:
// the lines arrive in parallel instead of faulting one after another as
// the scan reaches them, which is most of the latency of a descent once
// the tree outgrows the cache.
inline void prefetch_span(const void* p, std::size_t bytes) {
#if defined(__GNUC__) || defined(__clang__)
  const char* c = static_cast<const char*>(p);
  for (std::size_t off = 0; off < bytes; off += 64) __builtin_prefetch(c + off);
#else
  (void)p;
  (void)bytes;
#endif
}
}  // namespace

std::uint32_t BandwidthProfile::alloc_leaf() {
  if (!free_leaves_.empty()) {
    const std::uint32_t id = free_leaves_.back();
    free_leaves_.pop_back();
    leaves_[id].n = 0;
    return id;
  }
  leaves_.emplace_back();
  return static_cast<std::uint32_t>(leaves_.size() - 1);
}

std::uint32_t BandwidthProfile::alloc_inner() {
  if (!free_inners_.empty()) {
    const std::uint32_t id = free_inners_.back();
    free_inners_.pop_back();
    inners_[id].n = 0;
    return id;
  }
  inners_.emplace_back();
  return static_cast<std::uint32_t>(inners_.size() - 1);
}

void BandwidthProfile::free_leaf(std::uint32_t id) { free_leaves_.push_back(id); }

void BandwidthProfile::free_inner(std::uint32_t id) { free_inners_.push_back(id); }

void BandwidthProfile::refresh_child_meta(Inner& parent, int i) const {
  // Children are never empty when this runs (non-root nodes stay at or
  // above minimum fill; a root leaf has no parent).
  if (parent.child_leaf) {
    const Leaf& L = leaves_[parent.ent[i].child];
    RateKbps sum = 0;
    RateKbps best = kNoLevel;
    for (int k = 0; k < L.n; ++k) {
      sum += L.delta[k];
      best = std::max(best, sum);
    }
    parent.ent[i].max_key = L.key[L.n - 1];
    parent.ent[i].sum = sum;
    parent.ent[i].maxp = best;
  } else {
    const Inner& I = inners_[parent.ent[i].child];
    RateKbps sum = 0;
    RateKbps best = kNoLevel;
    for (int k = 0; k < I.n; ++k) {
      best = std::max(best, sum + I.ent[k].maxp);
      sum += I.ent[k].sum;
    }
    parent.ent[i].max_key = I.ent[I.n - 1].max_key;
    parent.ent[i].sum = sum;
    parent.ent[i].maxp = best;
  }
}

int BandwidthProfile::pick_child(const Inner& nd, Seconds t) {
  int i = 0;
  while (i < nd.n - 1 && nd.ent[i].max_key < t) ++i;
  return i;
}

void BandwidthProfile::split_child(std::uint32_t parent_id, int i) {
  const bool leaf = inners_[parent_id].child_leaf;
  const std::uint32_t left_id = inners_[parent_id].ent[i].child;
  const std::uint32_t right_id = leaf ? alloc_leaf() : alloc_inner();
  Inner& parent = inners_[parent_id];  // refetch: alloc may have grown the slab
  if (leaf) {
    Leaf& L = leaves_[left_id];
    Leaf& R = leaves_[right_id];
    const int keep = L.n / 2;
    R.n = static_cast<std::uint16_t>(L.n - keep);
    for (int k = 0; k < R.n; ++k) {
      R.key[k] = L.key[keep + k];
      R.delta[k] = L.delta[keep + k];
    }
    L.n = static_cast<std::uint16_t>(keep);
  } else {
    Inner& L = inners_[left_id];
    Inner& R = inners_[right_id];
    const int keep = L.n / 2;
    R.n = static_cast<std::uint16_t>(L.n - keep);
    R.child_leaf = L.child_leaf;
    for (int k = 0; k < R.n; ++k) {
      R.ent[k] = L.ent[keep + k];
    }
    L.n = static_cast<std::uint16_t>(keep);
  }
  for (int k = parent.n; k > i + 1; --k) {
    parent.ent[k] = parent.ent[k - 1];
  }
  ++parent.n;
  parent.ent[i + 1].child = right_id;
  refresh_child_meta(parent, i);
  refresh_child_meta(parent, i + 1);
}

void BandwidthProfile::fix_child(std::uint32_t parent_id, int i) {
  Inner& parent = inners_[parent_id];
  const bool leaf = parent.child_leaf;
  const int mn = leaf ? kLeafMin : kInnerMin;
  const auto size_of = [&](int k) -> int {
    return leaf ? leaves_[parent.ent[k].child].n : inners_[parent.ent[k].child].n;
  };
  if (i > 0 && size_of(i - 1) > mn) {
    // Borrow the left sibling's last entry/child.
    if (leaf) {
      Leaf& L = leaves_[parent.ent[i - 1].child];
      Leaf& C = leaves_[parent.ent[i].child];
      for (int k = C.n; k > 0; --k) {
        C.key[k] = C.key[k - 1];
        C.delta[k] = C.delta[k - 1];
      }
      C.key[0] = L.key[L.n - 1];
      C.delta[0] = L.delta[L.n - 1];
      ++C.n;
      --L.n;
    } else {
      Inner& L = inners_[parent.ent[i - 1].child];
      Inner& C = inners_[parent.ent[i].child];
      for (int k = C.n; k > 0; --k) {
        C.ent[k] = C.ent[k - 1];
      }
      C.ent[0] = L.ent[L.n - 1];
      ++C.n;
      --L.n;
    }
    refresh_child_meta(parent, i - 1);
    refresh_child_meta(parent, i);
    return;
  }
  if (i + 1 < parent.n && size_of(i + 1) > mn) {
    // Borrow the right sibling's first entry/child.
    if (leaf) {
      Leaf& C = leaves_[parent.ent[i].child];
      Leaf& R = leaves_[parent.ent[i + 1].child];
      C.key[C.n] = R.key[0];
      C.delta[C.n] = R.delta[0];
      ++C.n;
      for (int k = 1; k < R.n; ++k) {
        R.key[k - 1] = R.key[k];
        R.delta[k - 1] = R.delta[k];
      }
      --R.n;
    } else {
      Inner& C = inners_[parent.ent[i].child];
      Inner& R = inners_[parent.ent[i + 1].child];
      C.ent[C.n] = R.ent[0];
      ++C.n;
      for (int k = 1; k < R.n; ++k) {
        R.ent[k - 1] = R.ent[k];
      }
      --R.n;
    }
    refresh_child_meta(parent, i);
    refresh_child_meta(parent, i + 1);
    return;
  }
  // Both neighbors (at least one exists) sit at minimum fill: merge with
  // one. 2 * min < cap, so the merged node still has insert slack.
  const int a = i > 0 ? i - 1 : i;
  const int b = a + 1;
  if (leaf) {
    Leaf& A = leaves_[parent.ent[a].child];
    const Leaf& B = leaves_[parent.ent[b].child];
    for (int k = 0; k < B.n; ++k) {
      A.key[A.n + k] = B.key[k];
      A.delta[A.n + k] = B.delta[k];
    }
    A.n = static_cast<std::uint16_t>(A.n + B.n);
    free_leaf(parent.ent[b].child);
  } else {
    Inner& A = inners_[parent.ent[a].child];
    const Inner& B = inners_[parent.ent[b].child];
    for (int k = 0; k < B.n; ++k) {
      A.ent[A.n + k] = B.ent[k];
    }
    A.n = static_cast<std::uint16_t>(A.n + B.n);
    free_inner(parent.ent[b].child);
  }
  for (int k = b; k + 1 < parent.n; ++k) {
    parent.ent[k] = parent.ent[k + 1];
  }
  --parent.n;
  refresh_child_meta(parent, a);
}

void BandwidthProfile::apply_leaf(std::uint32_t leaf_id, Seconds t, RateKbps d) {
  Leaf& L = leaves_[leaf_id];
  int pos = 0;
  while (pos < L.n && L.key[pos] < t) ++pos;
  if (pos < L.n && L.key[pos] == t) {
    L.delta[pos] += d;
    if (L.delta[pos] == 0) {
      // Exact cancellation in integer kbit/s: the change point vanishes.
      for (int k = pos + 1; k < L.n; ++k) {
        L.key[k - 1] = L.key[k];
        L.delta[k - 1] = L.delta[k];
      }
      --L.n;
      --entry_count_;
    }
    return;
  }
  for (int k = L.n; k > pos; --k) {
    L.key[k] = L.key[k - 1];
    L.delta[k] = L.delta[k - 1];
  }
  L.key[pos] = t;
  L.delta[pos] = d;
  ++L.n;
  ++entry_count_;
}

void BandwidthProfile::apply_inner(std::uint32_t node_id, Seconds t, RateKbps d) {
  {
    // Preemptive rebalance: whether the op will insert or erase is only
    // known at the leaf, so keep the child we descend into clear of both
    // the full and the minimal boundary before entering it.
    Inner& nd = inners_[node_id];
    const int i = pick_child(nd, t);
    const std::uint32_t cid = nd.ent[i].child;
    if (nd.child_leaf) {
      prefetch_span(&leaves_[cid], sizeof(Leaf));
    } else {
      prefetch_span(&inners_[cid], sizeof(Inner));
    }
    const int cn = nd.child_leaf ? leaves_[cid].n : inners_[cid].n;
    if (cn == (nd.child_leaf ? kLeafCap : kInnerCap)) {
      split_child(node_id, i);  // grows the slab; references refetched below
    } else if (cn == (nd.child_leaf ? kLeafMin : kInnerMin)) {
      fix_child(node_id, i);  // may merge and renumber children
    }
  }
  Inner& nd = inners_[node_id];
  const int i = pick_child(nd, t);
  const std::uint32_t cid = nd.ent[i].child;
  if (nd.child_leaf) {
    apply_leaf(cid, t, d);
  } else {
    apply_inner(cid, t, d);  // may grow the slabs behind nd
  }
  refresh_child_meta(inners_[node_id], i);
}

void BandwidthProfile::apply_delta(Seconds t, RateKbps d) {
  if (root_ == kNil) {
    root_ = alloc_leaf();
    root_leaf_ = true;
    Leaf& L = leaves_[root_];
    L.n = 1;
    L.key[0] = t;
    L.delta[0] = d;
    entry_count_ = 1;
    return;
  }
  // Grow the root preemptively when full, mirroring apply_inner.
  const bool root_full = root_leaf_ ? leaves_[root_].n == kLeafCap
                                    : inners_[root_].n == kInnerCap;
  if (root_full) {
    const std::uint32_t new_root = alloc_inner();
    Inner& R = inners_[new_root];
    R.n = 1;
    R.child_leaf = root_leaf_;
    R.ent[0].child = root_;
    refresh_child_meta(R, 0);
    root_ = new_root;
    root_leaf_ = false;
    split_child(new_root, 0);
  }
  if (root_leaf_) {
    apply_leaf(root_, t, d);
    if (leaves_[root_].n == 0) {
      free_leaf(root_);
      root_ = kNil;
    }
    return;
  }
  apply_inner(root_, t, d);
  // Merges can leave the root with a single child: collapse it away.
  while (!root_leaf_ && inners_[root_].n == 1) {
    const std::uint32_t child = inners_[root_].ent[0].child;
    const bool child_leaf = inners_[root_].child_leaf;
    free_inner(root_);
    root_ = child;
    root_leaf_ = child_leaf;
  }
}

void BandwidthProfile::add(Seconds start, Seconds end, BitsPerSecond rate) {
  GRIDVC_REQUIRE(start < end, "reservation window inverted");
  GRIDVC_REQUIRE(rate > 0.0, "reservation rate must be positive");
  const RateKbps q = quantize_rate_kbps(rate);
  apply_delta(start, q);
  apply_delta(end, -q);
}

void BandwidthProfile::remove(Seconds start, Seconds end, BitsPerSecond rate) {
  GRIDVC_REQUIRE(start < end, "reservation window inverted");
  GRIDVC_REQUIRE(rate > 0.0, "reservation rate must be positive");
  const RateKbps q = quantize_rate_kbps(rate);
  apply_delta(start, -q);
  apply_delta(end, q);
}

void BandwidthProfile::shift_end(Seconds old_end, Seconds new_end, BitsPerSecond rate) {
  GRIDVC_REQUIRE(new_end < old_end, "end shift must truncate");
  GRIDVC_REQUIRE(rate > 0.0, "reservation rate must be positive");
  const RateKbps q = quantize_rate_kbps(rate);
  apply_delta(old_end, q);   // retire the old end marker
  apply_delta(new_end, -q);  // the block now ends here
}

RateKbps BandwidthProfile::level_at(Seconds t) const {
  if (root_ == kNil) return 0;
  RateKbps acc = 0;
  std::uint32_t node = root_;
  bool leaf = root_leaf_;
  while (!leaf) {
    const Inner& nd = inners_[node];
    int i = 0;
    while (i < nd.n && nd.ent[i].max_key <= t) {
      acc += nd.ent[i].sum;  // whole subtree is at or before t
      ++i;
    }
    if (i == nd.n) return acc;
    node = nd.ent[i].child;
    leaf = nd.child_leaf;
    if (leaf) {
      prefetch_span(&leaves_[node], sizeof(Leaf));
    } else {
      prefetch_span(&inners_[node], sizeof(Inner));
    }
  }
  const Leaf& L = leaves_[node];
  for (int k = 0; k < L.n && L.key[k] <= t; ++k) acc += L.delta[k];
  return acc;
}

BandwidthProfile::WindowLevels BandwidthProfile::window_levels(std::uint32_t node_id,
                                                               bool is_leaf, Seconds lo,
                                                               Seconds hi,
                                                               RateKbps base) const {
  // Children fully inside (lo, hi) are answered from their cached
  // (sum, maxp) aggregates; at most two children per level straddle a
  // boundary and recurse, so the walk is O(log n) nodes. The entry level
  // (sum of deltas with key <= lo) rides along the left boundary path.
  WindowLevels out{kNoLevel, base};
  if (is_leaf) {
    const Leaf& L = leaves_[node_id];
    RateKbps acc = base;
    for (int k = 0; k < L.n; ++k) {
      if (L.key[k] >= hi) break;
      acc += L.delta[k];
      if (L.key[k] > lo) {
        out.best = std::max(out.best, acc);
      } else {
        out.entry = acc;
      }
    }
    return out;
  }
  const Inner& nd = inners_[node_id];
  RateKbps acc = base;
  Seconds child_lo = kNegInf;  // keys in child k are > child_lo, <= max_key[k]
  for (int k = 0; k < nd.n; ++k) {
    if (child_lo >= hi) break;
    const Seconds child_hi = nd.ent[k].max_key;
    if (child_hi <= lo) {
      acc += nd.ent[k].sum;
      out.entry = acc;  // whole subtree is at or before lo
      child_lo = child_hi;
      continue;
    }
    if (child_lo >= lo && child_hi < hi) {
      out.best = std::max(out.best, acc + nd.ent[k].maxp);
    } else {
      if (nd.child_leaf) {
        prefetch_span(&leaves_[nd.ent[k].child], sizeof(Leaf));
      } else {
        prefetch_span(&inners_[nd.ent[k].child], sizeof(Inner));
      }
      const WindowLevels sub = window_levels(nd.ent[k].child, nd.child_leaf, lo, hi, acc);
      out.best = std::max(out.best, sub.best);
      if (child_lo < lo) out.entry = sub.entry;  // left boundary child
    }
    acc += nd.ent[k].sum;
    child_lo = child_hi;
  }
  return out;
}

BitsPerSecond BandwidthProfile::peak(Seconds start, Seconds end) const {
  GRIDVC_REQUIRE(start <= end, "peak window inverted");
  // [t, t) contains no instant: nothing is reserved over it.
  if (start >= end) return 0.0;
  if (root_ == kNil) return 0.0;
  // Entry level: the last change at or before `start` is in force during
  // the window (a block [start, x) applies from `start` inclusive, and a
  // block [y, start) has already ended at `start`). Change points at
  // `end` apply outside the window and are excluded.
  const WindowLevels w = window_levels(root_, root_leaf_, start, end, 0);
  const RateKbps best = std::max(w.best, w.entry);
  return static_cast<double>(std::max<RateKbps>(best, 0)) * 1000.0;
}

BitsPerSecond BandwidthProfile::at(Seconds t) const {
  return static_cast<double>(std::max<RateKbps>(level_at(t), 0)) * 1000.0;
}

void BandwidthProfile::for_each_delta(
    Seconds start, Seconds end, const std::function<void(Seconds, RateKbps)>& fn) const {
  if (root_ == kNil || start >= end) return;
  // Subtrees whose max key falls before the window are skipped whole;
  // the walk only descends into children that can hold a key in range,
  // so a narrow window over a large tree stays O(log n + hits).
  const auto walk = [&](const auto& self, std::uint32_t node, bool leaf) -> void {
    if (leaf) {
      const Leaf& L = leaves_[node];
      for (int k = 0; k < L.n; ++k) {
        if (L.key[k] >= end) break;
        if (L.key[k] >= start) fn(L.key[k], L.delta[k]);
      }
      return;
    }
    const Inner& nd = inners_[node];
    for (int k = 0; k < nd.n; ++k) {
      if (nd.ent[k].max_key < start) continue;
      self(self, nd.ent[k].child, nd.child_leaf);
      if (nd.ent[k].max_key >= end) break;
    }
  };
  walk(walk, root_, root_leaf_);
}

BandwidthCalendar::BandwidthCalendar(const net::Topology& topo, double reservable_fraction)
    : topo_(topo), reservable_fraction_(reservable_fraction), profiles_(topo.link_count()) {
  GRIDVC_REQUIRE(reservable_fraction > 0.0 && reservable_fraction <= 1.0,
                 "reservable fraction must be in (0, 1]");
}

BitsPerSecond BandwidthCalendar::available(net::LinkId link, Seconds start,
                                           Seconds end) const {
  GRIDVC_REQUIRE(link < profiles_.size(), "link id out of range");
  const BitsPerSecond reservable = topo_.link(link).capacity * reservable_fraction_;
  return std::max(0.0, reservable - profiles_[link].peak(start, end));
}

bool BandwidthCalendar::fits(const net::Path& path, Seconds start, Seconds end,
                             BitsPerSecond rate) const {
  GRIDVC_REQUIRE(!path.empty(), "fits() of empty path");
  for (net::LinkId l : path) {
    if (available(l, start, end) + kRateEps < rate) return false;
  }
  return true;
}

namespace {
// Shared precondition of fits_profile/book_profile: non-empty, each
// segment a valid window with positive rate, time-ascending without
// overlap (touching segments are fine).
void validate_profile(const std::vector<RateSegment>& profile) {
  GRIDVC_REQUIRE(!profile.empty(), "shaped booking needs at least one segment");
  Seconds prev_end = kNegInf;
  for (const RateSegment& s : profile) {
    GRIDVC_REQUIRE(s.start < s.end, "shaped segment window inverted");
    GRIDVC_REQUIRE(s.rate > 0.0, "shaped segment rate must be positive");
    GRIDVC_REQUIRE(s.start >= prev_end, "shaped segments must be time-ascending");
    prev_end = s.end;
  }
}
}  // namespace

bool BandwidthCalendar::fits_profile(const net::Path& path,
                                     const std::vector<RateSegment>& profile) const {
  GRIDVC_REQUIRE(!path.empty(), "fits_profile() of empty path");
  validate_profile(profile);
  for (const RateSegment& s : profile) {
    if (!fits(path, s.start, s.end, s.rate)) return false;
  }
  return true;
}

BandwidthCalendar::Booking& BandwidthCalendar::resolve(ReservationId id, const char* what) {
  const std::uint64_t slot_part = id & 0xffffffffull;
  const std::uint32_t generation = static_cast<std::uint32_t>(id >> 32);
  GRIDVC_REQUIRE(slot_part != 0 && slot_part <= bookings_.size(), what);
  Booking& b = bookings_[static_cast<std::size_t>(slot_part - 1)];
  GRIDVC_REQUIRE(b.live && b.generation == generation, what);
  return b;
}

ReservationId BandwidthCalendar::book(const net::Path& path, Seconds start, Seconds end,
                                      BitsPerSecond rate) {
  GRIDVC_PROF_ZONE("vc.calendar.book");
  GRIDVC_REQUIRE(fits(path, start, end, rate), "booking does not fit the calendar");
  for (net::LinkId l : path) profiles_[l].add(start, end, rate);
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    bookings_.emplace_back();
    slot = static_cast<std::uint32_t>(bookings_.size() - 1);
  }
  Booking& b = bookings_[slot];
  b.path.assign(path.begin(), path.end());  // reuses capacity on slot reuse
  b.start = start;
  b.end = end;
  b.rate = rate;
  b.segments.clear();
  b.live = true;
  ++active_;
  return (static_cast<ReservationId>(b.generation) << 32) |
         static_cast<ReservationId>(slot + 1);
}

ReservationId BandwidthCalendar::book_profile(const net::Path& path,
                                              std::vector<RateSegment> profile) {
  GRIDVC_PROF_ZONE("vc.calendar.book_profile");
  GRIDVC_REQUIRE(fits_profile(path, profile), "shaped booking does not fit the calendar");
  for (net::LinkId l : path) {
    for (const RateSegment& s : profile) profiles_[l].add(s.start, s.end, s.rate);
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    bookings_.emplace_back();
    slot = static_cast<std::uint32_t>(bookings_.size() - 1);
  }
  Booking& b = bookings_[slot];
  b.path.assign(path.begin(), path.end());
  b.start = profile.front().start;
  b.end = profile.back().end;
  b.rate = 0.0;
  b.segments.assign(profile.begin(), profile.end());  // reuses capacity
  b.live = true;
  ++active_;
  return (static_cast<ReservationId>(b.generation) << 32) |
         static_cast<ReservationId>(slot + 1);
}

void BandwidthCalendar::release(ReservationId id) {
  GRIDVC_PROF_ZONE("vc.calendar.release");
  Booking& b = resolve(id, "release of unknown booking");
  if (b.segments.empty()) {
    for (net::LinkId l : b.path) profiles_[l].remove(b.start, b.end, b.rate);
  } else {
    for (net::LinkId l : b.path) {
      for (const RateSegment& s : b.segments) profiles_[l].remove(s.start, s.end, s.rate);
    }
    b.segments.clear();
  }
  b.live = false;
  ++b.generation;  // stale ids (including this one) now fail resolve()
  free_slots_.push_back(static_cast<std::uint32_t>((id & 0xffffffffull) - 1));
  --active_;
}

void BandwidthCalendar::truncate(ReservationId id, Seconds new_end) {
  GRIDVC_PROF_ZONE("vc.calendar.truncate");
  Booking& b = resolve(id, "truncate of unknown booking");
  GRIDVC_REQUIRE(new_end <= b.end, "truncate cannot extend a booking");
  if (new_end == b.end) return;
  if (new_end <= b.start) {
    // Nothing of the window survives: a full release, so no residual
    // deltas remain, the slot is recycled, and the id goes stale.
    release(id);
    return;
  }
  if (b.segments.empty()) {
    for (net::LinkId l : b.path) profiles_[l].shift_end(b.end, new_end, b.rate);
    b.end = new_end;
    return;
  }
  // Shaped booking: drop segments past the cut, clip the straddler. The
  // first segment starts at b.start < new_end, so at least one survives.
  while (b.segments.back().start >= new_end) {
    const RateSegment s = b.segments.back();
    for (net::LinkId l : b.path) profiles_[l].remove(s.start, s.end, s.rate);
    b.segments.pop_back();
  }
  if (b.segments.back().end > new_end) {
    RateSegment& s = b.segments.back();
    for (net::LinkId l : b.path) profiles_[l].shift_end(s.end, new_end, s.rate);
    s.end = new_end;
  }
  b.end = b.segments.back().end;  // may undershoot new_end across a gap
}

std::vector<RateSegment> BandwidthCalendar::headroom_profile(const net::Path& path,
                                                             Seconds start,
                                                             Seconds end) const {
  GRIDVC_PROF_ZONE("vc.calendar.headroom");
  GRIDVC_REQUIRE(!path.empty(), "headroom_profile() of empty path");
  GRIDVC_REQUIRE(start < end, "headroom window inverted");
  // Cut the window at every change point of any link, then sample each
  // piece once per link: inside a piece no profile changes, so at() at
  // the piece start is the level throughout.
  std::vector<Seconds> cuts;
  cuts.push_back(start);
  for (net::LinkId l : path) {
    profiles_[l].for_each_delta(start, end, [&](Seconds t, RateKbps) {
      if (t > start) cuts.push_back(t);
    });
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  cuts.push_back(end);

  std::vector<RateSegment> out;
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    BitsPerSecond avail = std::numeric_limits<BitsPerSecond>::infinity();
    for (net::LinkId l : path) {
      const BitsPerSecond reservable = topo_.link(l).capacity * reservable_fraction_;
      avail = std::min(avail, std::max(0.0, reservable - profiles_[l].at(cuts[i])));
    }
    if (!out.empty() && out.back().rate == avail) {
      out.back().end = cuts[i + 1];  // merge equal-rate neighbors
    } else {
      out.push_back({cuts[i], cuts[i + 1], avail});
    }
  }
  return out;
}

const std::vector<RateSegment>& BandwidthCalendar::booking_segments(ReservationId id) const {
  return const_cast<BandwidthCalendar*>(this)
      ->resolve(id, "booking_segments of unknown booking")
      .segments;
}

std::vector<std::pair<Seconds, RateKbps>> BandwidthCalendar::link_deltas(
    net::LinkId link) const {
  GRIDVC_REQUIRE(link < profiles_.size(), "link id out of range");
  std::vector<std::pair<Seconds, RateKbps>> out;
  constexpr Seconds kInf = std::numeric_limits<Seconds>::infinity();
  profiles_[link].for_each_delta(kNegInf, kInf,
                                 [&](Seconds t, RateKbps d) { out.emplace_back(t, d); });
  return out;
}

}  // namespace gridvc::vc
