#include "vc/bandwidth_calendar.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gridvc::vc {

namespace {
// Reserved-rate comparisons tolerate this much float noise (bits/s).
constexpr double kRateEps = 1e-3;
}  // namespace

void BandwidthProfile::add(Seconds start, Seconds end, BitsPerSecond rate) {
  GRIDVC_REQUIRE(start < end, "reservation window inverted");
  GRIDVC_REQUIRE(rate > 0.0, "reservation rate must be positive");
  deltas_[start] += rate;
  deltas_[end] -= rate;
  // Drop exact-zero deltas to keep the map compact.
  if (std::abs(deltas_[start]) < kRateEps) deltas_.erase(start);
  if (std::abs(deltas_[end]) < kRateEps) deltas_.erase(end);
}

void BandwidthProfile::remove(Seconds start, Seconds end, BitsPerSecond rate) {
  GRIDVC_REQUIRE(start < end, "reservation window inverted");
  deltas_[start] -= rate;
  deltas_[end] += rate;
  if (std::abs(deltas_[start]) < kRateEps) deltas_.erase(start);
  if (std::abs(deltas_[end]) < kRateEps) deltas_.erase(end);
}

BitsPerSecond BandwidthProfile::peak(Seconds start, Seconds end) const {
  GRIDVC_REQUIRE(start <= end, "peak window inverted");
  // Entry level: all deltas at or before `start` are in force during the
  // window (a block [start, x) applies from `start` inclusive, and a
  // block [y, start) has already ended at `start`). Then sweep deltas
  // strictly inside (start, end).
  double level = 0.0;
  auto it = deltas_.begin();
  for (; it != deltas_.end() && it->first <= start; ++it) level += it->second;
  double best = level;
  for (; it != deltas_.end() && it->first < end; ++it) {
    level += it->second;
    best = std::max(best, level);
  }
  return std::max(best, 0.0);
}

BitsPerSecond BandwidthProfile::at(Seconds t) const {
  double level = 0.0;
  for (const auto& [when, delta] : deltas_) {
    if (when > t) break;
    level += delta;
  }
  return std::max(level, 0.0);
}

bool BandwidthProfile::empty() const { return deltas_.empty(); }

BandwidthCalendar::BandwidthCalendar(const net::Topology& topo, double reservable_fraction)
    : topo_(topo), reservable_fraction_(reservable_fraction), profiles_(topo.link_count()) {
  GRIDVC_REQUIRE(reservable_fraction > 0.0 && reservable_fraction <= 1.0,
                 "reservable fraction must be in (0, 1]");
}

BitsPerSecond BandwidthCalendar::available(net::LinkId link, Seconds start,
                                           Seconds end) const {
  GRIDVC_REQUIRE(link < profiles_.size(), "link id out of range");
  const BitsPerSecond reservable = topo_.link(link).capacity * reservable_fraction_;
  return std::max(0.0, reservable - profiles_[link].peak(start, end));
}

bool BandwidthCalendar::fits(const net::Path& path, Seconds start, Seconds end,
                             BitsPerSecond rate) const {
  GRIDVC_REQUIRE(!path.empty(), "fits() of empty path");
  for (net::LinkId l : path) {
    if (available(l, start, end) + kRateEps < rate) return false;
  }
  return true;
}

ReservationId BandwidthCalendar::book(const net::Path& path, Seconds start, Seconds end,
                                      BitsPerSecond rate) {
  GRIDVC_REQUIRE(fits(path, start, end, rate), "booking does not fit the calendar");
  for (net::LinkId l : path) profiles_[l].add(start, end, rate);
  const ReservationId id = next_id_++;
  bookings_.emplace(id, Booking{path, start, end, rate});
  return id;
}

void BandwidthCalendar::release(ReservationId id) {
  const auto it = bookings_.find(id);
  GRIDVC_REQUIRE(it != bookings_.end(), "release of unknown booking");
  const Booking& b = it->second;
  for (net::LinkId l : b.path) profiles_[l].remove(b.start, b.end, b.rate);
  bookings_.erase(it);
}

void BandwidthCalendar::truncate(ReservationId id, Seconds new_end) {
  const auto it = bookings_.find(id);
  GRIDVC_REQUIRE(it != bookings_.end(), "truncate of unknown booking");
  Booking& b = it->second;
  GRIDVC_REQUIRE(new_end >= b.start && new_end <= b.end, "truncate outside booking window");
  if (new_end == b.end) return;
  if (new_end == b.start) {
    release(id);
    return;
  }
  for (net::LinkId l : b.path) {
    profiles_[l].remove(b.start, b.end, b.rate);
    profiles_[l].add(b.start, new_end, b.rate);
  }
  b.end = new_end;
}

}  // namespace gridvc::vc
