#include "vc/hybrid_te.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"

namespace gridvc::vc {

HybridTrafficEngineer::HybridTrafficEngineer(net::Network& network, HybridTeConfig config)
    : network_(network),
      config_(config),
      detector_(config.detector, [this](AlphaDetector::FlowKey key, BitsPerSecond) {
        promote(static_cast<net::FlowId>(key));
      }) {
  GRIDVC_REQUIRE(config_.poll_period > 0.0, "poll period must be positive");
  GRIDVC_REQUIRE(config_.circuit_pool > 0.0, "circuit pool must be positive");
  GRIDVC_REQUIRE(config_.per_flow_guarantee > 0.0, "per-flow guarantee must be positive");
  tick_ = network_.simulator().schedule_periodic(config_.poll_period, config_.poll_period,
                                                 [this] {
                                                   poll();
                                                   return true;
                                                 });
}

HybridTrafficEngineer::~HybridTrafficEngineer() { stop(); }

void HybridTrafficEngineer::stop() { tick_.cancel(); }

void HybridTrafficEngineer::poll() {
  const Seconds now = network_.simulator().now();

  // Mark-and-sweep: flows that disappeared since the last poll release
  // their pool grant and detector state.
  for (auto& [id, active] : seen_) active = false;

  for (net::FlowId id : network_.active_flows()) {
    if (config_.eligible && !config_.eligible(id)) continue;
    auto [it, inserted] = seen_.insert_or_assign(id, true);
    if (inserted) ++stats_.flows_observed;
    const Bytes sent = network_.sent_bytes(id);
    detector_.observe(id, sent, now);
    const auto rit = redirected_.find(id);
    if (rit != redirected_.end()) {
      rit->second.last_seen_bytes = sent;
    }
  }

  for (auto it = seen_.begin(); it != seen_.end();) {
    if (it->second) {
      ++it;
      continue;
    }
    const net::FlowId id = it->first;
    const auto rit = redirected_.find(id);
    if (rit != redirected_.end()) {
      // The flow finished: credit the bytes it moved on the circuit and
      // return its bandwidth. (The final stretch between the last poll
      // and completion is attributed from the flow's total size when it
      // completed normally; we only know last_seen here, which is a
      // slight undercount — acceptable for an operations metric.)
      stats_.redirected_bytes += static_cast<double>(rit->second.last_seen_bytes) -
                                 static_cast<double>(rit->second.bytes_at_promotion);
      pool_in_use_ = std::max(0.0, pool_in_use_ - rit->second.guarantee);
      redirected_.erase(rit);
    }
    detector_.forget(id);
    it = seen_.erase(it);
  }
}

void HybridTrafficEngineer::promote(net::FlowId id) {
  const BitsPerSecond headroom = config_.circuit_pool - pool_in_use_;
  if (headroom < 1.0) {
    ++stats_.redirections_denied;
    return;
  }
  const BitsPerSecond grant = std::min(config_.per_flow_guarantee, headroom);
  network_.update_guarantee(id, grant);
  Redirected r;
  r.guarantee = grant;
  r.bytes_at_promotion = network_.sent_bytes(id);
  r.last_seen_bytes = r.bytes_at_promotion;
  redirected_.emplace(id, r);
  pool_in_use_ += grant;
  ++stats_.flows_redirected;
}

}  // namespace gridvc::vc
