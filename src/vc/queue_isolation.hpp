// Virtual-queue isolation model.
//
// §I positive #3: during VC setup, "packet classifiers on the input side
// and packet schedulers on the output side of router interfaces can be
// configured to isolate α-flow packets into their own virtual queues.
// Such configurations will prevent packets of general-purpose flows from
// getting stuck behind a large-sized burst of packets from an α flow. The
// result is a reduction in delay variance (jitter) for the
// general-purpose flows."
//
// This module quantifies that claim with a standard queueing abstraction
// of one output interface:
//
//   * Shared FIFO: general-purpose (GP) packets arriving while an α-flow
//     burst of B bytes occupies the queue wait for the burst's residual
//     service time. With burst arrivals Poisson at rate λ_b and uniform
//     phase, the extra GP delay is U(0, B·8/C) with probability
//     (λ_b · B·8/C), plus the M/M/1-style queueing of the GP traffic
//     itself.
//   * Weighted virtual queues (VC-configured): GP packets see only the GP
//     queue serviced at its weighted share; α bursts no longer enter the
//     GP delay distribution.
//
// Ablation C uses both an analytic jitter summary and a Monte-Carlo
// sampler of per-packet delays.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace gridvc::vc {

struct InterfaceModel {
  BitsPerSecond capacity = 0.0;          ///< line rate C
  double gp_utilization = 0.1;           ///< GP offered load fraction (rho)
  Bytes gp_packet_size = 1500;           ///< GP packet size
  double alpha_burst_per_second = 0.0;   ///< α bursts arriving per second
  Bytes alpha_burst_bytes = 0;           ///< bytes per α burst
  /// GP weight under virtual-queue scheduling (fraction of C guaranteed
  /// to the GP queue when both queues are backlogged).
  double gp_weight = 0.5;
};

/// Delay statistics of general-purpose packets through one interface.
struct DelaySummary {
  Seconds mean = 0.0;
  Seconds stddev = 0.0;   ///< the "jitter" the paper refers to
  Seconds p99 = 0.0;
};

class QueueIsolationModel {
 public:
  explicit QueueIsolationModel(InterfaceModel interface);

  /// Analytic mean/variance of GP packet delay with a shared FIFO
  /// (α bursts delay GP packets).
  DelaySummary shared_fifo_analytic() const;

  /// Analytic delay with α flows isolated into their own virtual queue.
  DelaySummary isolated_analytic() const;

  /// Monte-Carlo per-packet GP delays (`samples` packets), shared FIFO.
  std::vector<double> sample_shared_fifo(std::size_t samples, Rng& rng) const;

  /// Monte-Carlo per-packet GP delays, isolated virtual queue.
  std::vector<double> sample_isolated(std::size_t samples, Rng& rng) const;

 private:
  Seconds gp_service_time() const;
  Seconds alpha_burst_service_time() const;

  InterfaceModel interface_;
};

}  // namespace gridvc::vc
