// Constrained path computation for virtual circuits.
//
// "there is an opportunity for a management software system such as
// OSCARS to explicitly select a path for the virtual circuit based on
// current network conditions, policies, and service level agreements"
// (§I). The path computation engine prunes links that (a) lack calendar
// headroom for the requested rate over the requested window or (b) are
// administratively excluded, then runs least-delay Dijkstra over the
// survivors — the widest-headroom tie-break keeps load spread.
#pragma once

#include <functional>
#include <optional>

#include "net/routing.hpp"
#include "net/topology.hpp"
#include "vc/bandwidth_calendar.hpp"

namespace gridvc::vc {

/// Administrative policy hook: return false to forbid a link for circuits.
using LinkPolicy = std::function<bool(net::LinkId)>;

class PathComputer {
 public:
  PathComputer(const net::Topology& topo, const BandwidthCalendar& calendar,
               LinkPolicy policy = nullptr);

  /// Least-delay path from src to dst on which `rate` fits over
  /// [start, end), or nullopt when no such path exists.
  std::optional<net::Path> compute(net::NodeId src, net::NodeId dst, BitsPerSecond rate,
                                   Seconds start, Seconds end) const;

  /// Like compute(), but restricted to links whose endpoints are both in
  /// `domain` (plus links from/to hosts of that domain). Used by the
  /// inter-domain coordinator for per-domain segments.
  std::optional<net::Path> compute_within_domain(net::NodeId src, net::NodeId dst,
                                                 BitsPerSecond rate, Seconds start,
                                                 Seconds end,
                                                 const std::string& domain) const;

 private:
  const net::Topology& topo_;
  const BandwidthCalendar& calendar_;
  LinkPolicy policy_;
};

}  // namespace gridvc::vc
