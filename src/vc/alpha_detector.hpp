// Online alpha-flow identification.
//
// §IV: "With automatic α flow identification [19], packets from α flows
// can be redirected to intra-domain VCs, such as MPLS label switched
// paths, that have been preconfigured between ingress-egress router
// pairs." (The reference is the authors' HNTES line of work.)
//
// An α flow (Sarvotham et al.) is a high-rate, large-volume flow that
// dominates a link's burstiness. The detector watches per-flow byte
// progress reported by the data plane and flags a flow once it has both
//   * moved at least `min_bytes`, and
//   * sustained at least `min_rate` over the last observation window,
// which is the practical ingress-side heuristic: big enough to matter,
// fast enough to hurt.
//
// The detector is deliberately data-plane-agnostic: callers feed it
// (flow id, cumulative bytes, timestamp) observations — from the
// flow-level Network, from parsed NetFlow-like records, or from tests —
// and register a callback for promotions.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "common/units.hpp"

namespace gridvc::vc {

struct AlphaDetectorConfig {
  /// Minimum cumulative volume before a flow can be considered (bytes).
  Bytes min_bytes = 256 * MiB;
  /// Minimum sustained rate over the trailing window (bits/s).
  BitsPerSecond min_rate = mbps(400.0);
  /// Trailing window over which the rate is measured (seconds).
  Seconds window = 10.0;
};

class AlphaDetector {
 public:
  using FlowKey = std::uint64_t;
  /// Fired exactly once per flow, at promotion time.
  using PromotionFn = std::function<void(FlowKey, BitsPerSecond observed_rate)>;

  explicit AlphaDetector(AlphaDetectorConfig config = {}, PromotionFn on_promote = nullptr);

  /// Feed one observation: flow `key` has moved `cumulative_bytes` in
  /// total as of time `now`. Observations for one flow must have
  /// non-decreasing time and byte values.
  void observe(FlowKey key, Bytes cumulative_bytes, Seconds now);

  /// Remove a finished flow's state.
  void forget(FlowKey key);

  /// True once the flow was promoted to alpha status.
  bool is_alpha(FlowKey key) const;

  std::size_t tracked_flows() const { return flows_.size(); }
  std::size_t promoted_count() const { return promoted_; }

  const AlphaDetectorConfig& config() const { return config_; }

 private:
  struct State {
    Seconds first_seen = 0.0;
    // Trailing-window anchor: bytes/time at the start of the current
    // measurement window.
    Seconds window_start = 0.0;
    Bytes window_start_bytes = 0;
    Bytes last_bytes = 0;
    Seconds last_time = 0.0;
    bool alpha = false;
  };

  AlphaDetectorConfig config_;
  PromotionFn on_promote_;
  std::map<FlowKey, State> flows_;
  std::size_t promoted_ = 0;
};

}  // namespace gridvc::vc
