// Inter-domain circuit coordination (IDCP-style).
//
// §II: "ESnet and Internet2 deploy Inter-Domain Controller Protocol (IDCP)
// schedulers that receive and process advance-reservation requests for
// virtual circuits"; §IV argues inter-domain dynamic circuits are the
// scalable option and that providers want control over the inter-domain
// path. The coordinator implements the standard chain model:
//
//   1. Compute an end-to-end path over the full multi-domain topology.
//   2. Cut it into per-domain segments at domain boundaries.
//   3. Ask each domain's IDC to book its segment (two-phase: if any
//      domain rejects, the already-booked segments are rolled back).
//   4. End-to-end setup delay = the slowest domain's activation time
//      (domains signal in parallel, per IDCP).
//
// Domains are identified by the `domain` tag of router nodes.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "vc/idc.hpp"

namespace gridvc::vc {

/// A per-domain controller registered with the coordinator.
struct DomainController {
  std::string domain;
  Idc* idc = nullptr;  ///< non-owning; must outlive the coordinator
};

class InterdomainCoordinator {
 public:
  /// All controllers share the one multi-domain `topo` (each IDC's
  /// calendar still only books its own segment's links).
  InterdomainCoordinator(sim::Simulator& sim, const net::Topology& topo,
                         std::vector<DomainController> controllers);

  struct SegmentBooking {
    std::string domain;
    std::uint64_t circuit_id = 0;
  };

  struct Result {
    bool accepted = false;
    RejectReason reason = RejectReason::kInvalidRequest;
    net::Path end_to_end_path;
    std::vector<SegmentBooking> segments;
    /// Predicted activation of the slowest domain (== end-to-end setup).
    Seconds activation = 0.0;
    /// Coordinator-assigned end-to-end chain id: the subject id of the
    /// kVcSegmentBooked / kVcSegmentRollback trace events this attempt
    /// emitted (assigned whether or not the chain was admitted).
    std::uint64_t chain_id = 0;
  };

  /// Book an end-to-end circuit across all traversed domains.
  Result create_reservation(const ReservationRequest& request);

  /// Cut a path into maximal same-domain runs (host endpoints attach to
  /// their neighbor's domain). Exposed for testing.
  struct Segment {
    std::string domain;
    net::Path links;
  };
  std::vector<Segment> segment_path(const net::Path& path) const;

 private:
  Idc* controller_for(const std::string& domain) const;

  sim::Simulator& sim_;
  const net::Topology& topo_;
  std::map<std::string, Idc*> controllers_;
  std::uint64_t next_chain_id_ = 1;
};

}  // namespace gridvc::vc
