#include "vc/interdomain.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "net/routing.hpp"
#include "obs/profiler.hpp"

namespace gridvc::vc {

InterdomainCoordinator::InterdomainCoordinator(sim::Simulator& sim,
                                               const net::Topology& topo,
                                               std::vector<DomainController> controllers)
    : sim_(sim), topo_(topo) {
  for (const auto& c : controllers) {
    GRIDVC_REQUIRE(c.idc != nullptr, "null domain controller");
    GRIDVC_REQUIRE(!controllers_.contains(c.domain), "duplicate domain: " + c.domain);
    controllers_.emplace(c.domain, c.idc);
  }
  GRIDVC_REQUIRE(!controllers_.empty(), "coordinator needs at least one domain");
}

Idc* InterdomainCoordinator::controller_for(const std::string& domain) const {
  const auto it = controllers_.find(domain);
  return it == controllers_.end() ? nullptr : it->second;
}

std::vector<InterdomainCoordinator::Segment> InterdomainCoordinator::segment_path(
    const net::Path& path) const {
  GRIDVC_PROF_ZONE("vc.interdomain.segment_path");
  std::vector<Segment> segments;
  for (net::LinkId lid : path) {
    const net::Link& link = topo_.link(lid);
    // A link belongs to the domain of its router endpoints; access links
    // (host<->router) belong to the router's domain.
    const net::Node& from = topo_.node(link.from);
    const net::Node& to = topo_.node(link.to);
    std::string domain;
    if (from.kind == net::NodeKind::kRouter) {
      domain = from.domain;
    } else {
      domain = to.domain;
    }
    if (segments.empty() || segments.back().domain != domain) {
      segments.push_back(Segment{domain, {}});
    }
    segments.back().links.push_back(lid);
  }
  return segments;
}

InterdomainCoordinator::Result InterdomainCoordinator::create_reservation(
    const ReservationRequest& request) {
  GRIDVC_PROF_ZONE("vc.interdomain.create_reservation");
  Result result;
  result.chain_id = next_chain_id_++;
  const auto path = net::shortest_path(topo_, request.src, request.dst);
  if (!path || path->empty()) {
    result.reason = RejectReason::kNoRoute;
    return result;
  }
  result.end_to_end_path = *path;

  const auto segments = segment_path(*path);
  // Two-phase booking: try every domain in path order; on failure cancel
  // the segments already booked. Rollbacks are emitted segment-by-segment
  // so the trace shows exactly which bookings a rejected chain undid.
  const auto roll_back = [&] {
    for (std::size_t i = result.segments.size(); i-- > 0;) {
      const auto& booked = result.segments[i];
      controller_for(booked.domain)->cancel(booked.circuit_id);
      sim_.obs().emit(obs::TraceEvent{sim_.now(), obs::TraceEventType::kVcSegmentRollback,
                                      result.chain_id, i,
                                      static_cast<double>(booked.circuit_id), 0.0});
    }
    result.segments.clear();
  };
  for (std::size_t seg_index = 0; seg_index < segments.size(); ++seg_index) {
    GRIDVC_PROF_ZONE("vc.interdomain.segment_book");
    const auto& seg = segments[seg_index];
    Idc* idc = controller_for(seg.domain);
    if (idc == nullptr) {
      result.reason = RejectReason::kNoRoute;  // uncooperative domain
      roll_back();
      return result;
    }
    ReservationRequest seg_request = request;
    seg_request.src = topo_.link(seg.links.front()).from;
    seg_request.dst = topo_.link(seg.links.back()).to;
    seg_request.description = request.description + " [" + seg.domain + " segment]";
    const auto sub = idc->create_reservation(seg_request);
    if (!sub.accepted()) {
      result.reason = sub.reason;
      roll_back();
      return result;
    }
    sim_.obs().emit(obs::TraceEvent{sim_.now(), obs::TraceEventType::kVcSegmentBooked,
                                    result.chain_id, seg_index,
                                    static_cast<double>(*sub.circuit_id), 0.0});
    result.segments.push_back(SegmentBooking{seg.domain, *sub.circuit_id});
  }

  // Domains provision in parallel; the end-to-end circuit is usable when
  // the slowest segment activates.
  result.activation = 0.0;
  for (const auto& booked : result.segments) {
    Idc* idc = controller_for(booked.domain);
    result.activation = std::max(
        result.activation, idc->predicted_activation(sim_.now(), request.start_time));
  }
  result.accepted = true;
  return result;
}

}  // namespace gridvc::vc
