#include "vc/queue_isolation.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace gridvc::vc {

QueueIsolationModel::QueueIsolationModel(InterfaceModel interface) : interface_(interface) {
  GRIDVC_REQUIRE(interface_.capacity > 0.0, "interface capacity must be positive");
  GRIDVC_REQUIRE(interface_.gp_utilization >= 0.0 && interface_.gp_utilization < 1.0,
                 "GP utilization must be in [0, 1)");
  GRIDVC_REQUIRE(interface_.gp_weight > 0.0 && interface_.gp_weight <= 1.0,
                 "GP weight must be in (0, 1]");
}

Seconds QueueIsolationModel::gp_service_time() const {
  return transfer_time(interface_.gp_packet_size, interface_.capacity);
}

Seconds QueueIsolationModel::alpha_burst_service_time() const {
  return transfer_time(interface_.alpha_burst_bytes, interface_.capacity);
}

namespace {

/// M/M/1 waiting + service moments for offered load rho and mean service s.
struct Mm1 {
  double mean;
  double variance;
};
Mm1 mm1_delay(double rho, Seconds s) {
  // Sojourn time of M/M/1: exponential with mean s / (1 - rho).
  const double mean = s / (1.0 - rho);
  return Mm1{mean, mean * mean};
}

DelaySummary summarize_mixture(double base_mean, double base_var, double burst_prob,
                               Seconds burst_max) {
  // GP delay = M/M/1 sojourn + (with probability burst_prob) an extra
  // U(0, burst_max) residual wait behind an α burst.
  const double extra_mean = burst_prob * burst_max / 2.0;
  const double extra_second_moment = burst_prob * burst_max * burst_max / 3.0;
  const double extra_var = extra_second_moment - extra_mean * extra_mean;
  DelaySummary out;
  out.mean = base_mean + extra_mean;
  out.stddev = std::sqrt(std::max(0.0, base_var + extra_var));
  // p99 of the mixture: if bursts are the rare dominant term, the tail is
  // burst-bound; otherwise it is the exponential sojourn tail.
  const double exp_p99 = base_mean * std::log(100.0);
  const double burst_p99 = burst_prob >= 0.01 ? burst_max * (1.0 - 0.01 / burst_prob) : 0.0;
  out.p99 = std::max(exp_p99, burst_p99 + base_mean);
  return out;
}

}  // namespace

DelaySummary QueueIsolationModel::shared_fifo_analytic() const {
  const Seconds s = gp_service_time();
  // In the shared FIFO the α bursts consume capacity, raising effective
  // GP utilization.
  const double alpha_load =
      interface_.alpha_burst_per_second * alpha_burst_service_time();
  const double rho = std::min(0.999, interface_.gp_utilization + alpha_load);
  const Mm1 base = mm1_delay(rho, s);
  // Probability a GP packet lands while a burst drains: load fraction of
  // time the burst occupies the line.
  const double burst_prob = std::min(1.0, alpha_load);
  return summarize_mixture(base.mean, base.variance, burst_prob,
                           alpha_burst_service_time());
}

DelaySummary QueueIsolationModel::isolated_analytic() const {
  // GP queue serviced at min-guarantee gp_weight * C when the α queue is
  // backlogged; the α queue is backlogged for its load fraction of time,
  // so the GP queue's average service rate is a convex mix. Conservative:
  // use the guaranteed share whenever bursts exist.
  const double alpha_load =
      interface_.alpha_burst_per_second * alpha_burst_service_time();
  const double effective_capacity_fraction =
      alpha_load > 0.0 ? interface_.gp_weight + (1.0 - interface_.gp_weight) *
                                                    std::max(0.0, 1.0 - alpha_load)
                       : 1.0;
  const Seconds s = gp_service_time() / effective_capacity_fraction;
  const double rho = std::min(0.999, interface_.gp_utilization / effective_capacity_fraction);
  const Mm1 base = mm1_delay(rho, s);
  // No α burst ever enters the GP queue: burst term vanishes.
  return summarize_mixture(base.mean, base.variance, 0.0, 0.0);
}

std::vector<double> QueueIsolationModel::sample_shared_fifo(std::size_t samples,
                                                            Rng& rng) const {
  const Seconds s = gp_service_time();
  const Seconds burst_s = alpha_burst_service_time();
  const double alpha_load = interface_.alpha_burst_per_second * burst_s;
  const double rho = std::min(0.999, interface_.gp_utilization + alpha_load);
  const double burst_prob = std::min(1.0, alpha_load);
  std::vector<double> delays;
  delays.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    double d = rng.exponential(s / (1.0 - rho));  // M/M/1 sojourn
    if (rng.bernoulli(burst_prob)) {
      d += rng.uniform(0.0, burst_s);  // residual of the in-progress burst
    }
    delays.push_back(d);
  }
  return delays;
}

std::vector<double> QueueIsolationModel::sample_isolated(std::size_t samples,
                                                         Rng& rng) const {
  const double alpha_load =
      interface_.alpha_burst_per_second * alpha_burst_service_time();
  const double effective_capacity_fraction =
      alpha_load > 0.0 ? interface_.gp_weight + (1.0 - interface_.gp_weight) *
                                                    std::max(0.0, 1.0 - alpha_load)
                       : 1.0;
  const Seconds s = gp_service_time() / effective_capacity_fraction;
  const double rho = std::min(0.999, interface_.gp_utilization / effective_capacity_fraction);
  std::vector<double> delays;
  delays.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    delays.push_back(rng.exponential(s / (1.0 - rho)));
  }
  return delays;
}

}  // namespace gridvc::vc
