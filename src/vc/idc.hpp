// OSCARS-like Inter-Domain Controller (single-domain scheduler).
//
// Implements the reservation lifecycle of §IV:
//
//   createReservation(startTime, endTime, bandwidth, endpoints)
//     -> path computation against the bandwidth calendar
//     -> admission (book) or rejection
//   provisioning ("automatic signaling"): just before startTime the IDC
//     configures the path's routers. With kBatchedAutomatic signaling the
//     IDC flushes provisioning work at fixed batch boundaries
//     (batch_interval, default 1 min), so a request for *immediate* use
//     activates only at the first boundary at least one full interval
//     after submission — the paper's "minimum 1-min VC setup delay". With
//     kImmediate signaling, activation follows submission by a fixed
//     hardware signaling delay (the paper's 50 ms scenario).
//   release: at endTime (or on early release, which returns the calendar
//     tail to the pool).
//
// The IDC is control-plane only; callers attach the activated circuit's
// rate guarantee to data-plane flows (see gridftp::TransferEngine).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "recovery/circuit_breaker.hpp"
#include "recovery/journal.hpp"
#include "sim/simulator.hpp"
#include "vc/bandwidth_calendar.hpp"
#include "vc/path_computation.hpp"
#include "vc/reservation.hpp"

namespace gridvc::vc {

struct IdcConfig {
  SignalingMode mode = SignalingMode::kBatchedAutomatic;
  /// Batch boundary cadence for kBatchedAutomatic (the ESnet "1 min").
  Seconds batch_interval = 60.0;
  /// Fixed signaling latency for kImmediate (the paper's 50 ms scenario).
  Seconds immediate_setup_delay = 0.05;
  /// Fraction of each link's capacity the calendar may hand to circuits.
  double reservable_fraction = 1.0;
  /// When an *active* circuit loses a link it enters CircuitState::kFailed
  /// and, if this is set, the IDC re-signals it: after a backoff it
  /// recomputes a path avoiding failed links and, if the calendar admits
  /// it for the remaining window, re-activates the circuit (on_active
  /// fires again). Re-signaling gives up after max_resignal_attempts
  /// failed path computations or when the window expires.
  bool resignal_on_failure = true;
  Seconds resignal_backoff = 5.0;          ///< pause before the first re-signal
  double resignal_backoff_multiplier = 2.0;  ///< growth per failed re-signal
  int max_resignal_attempts = 3;
  /// Cap on retained terminal lifecycle records; oldest ids are evicted
  /// first. See Idc::kTerminalCapacity for the default.
  std::size_t terminal_capacity = 256;
  /// Client-side circuit breaker wrapped around re-signaling: consecutive
  /// control-plane failures (outage windows) trip it, after which
  /// re-signal attempts fail fast until a half-open probe succeeds.
  recovery::CircuitBreakerConfig breaker;
  /// Optional write-ahead journal for accepted reservations. When set,
  /// admissions are appended, modifications re-appended, and terminal
  /// circuits tombstoned, so a restarted IDC can rebuild its live
  /// reservation set with recover_from_journal(). Must outlive the Idc.
  recovery::Journal* journal = nullptr;
};

class Idc {
 public:
  /// Circuit lifecycle notifications.
  using CircuitFn = std::function<void(const Circuit&)>;

  Idc(sim::Simulator& sim, const net::Topology& topo, IdcConfig config = {},
      LinkPolicy policy = nullptr);
  Idc(const Idc&) = delete;
  Idc& operator=(const Idc&) = delete;

  /// Outcome of create_reservation.
  struct SubmitResult {
    std::optional<std::uint64_t> circuit_id;  ///< set iff accepted
    RejectReason reason = RejectReason::kInvalidRequest;
    bool accepted() const { return circuit_id.has_value(); }
  };

  /// Submit an advance reservation. `on_active` fires when the data plane
  /// guarantee takes effect (again after each successful re-signal),
  /// `on_release` when the circuit is torn down, and `on_failure` when an
  /// active circuit loses its path — at that point the guarantee is
  /// already gone, so callers should degrade to best-effort immediately.
  SubmitResult create_reservation(const ReservationRequest& request,
                                  CircuitFn on_active = nullptr,
                                  CircuitFn on_release = nullptr,
                                  CircuitFn on_failure = nullptr);

  /// Convenience for the common data-transfer pattern: a circuit for
  /// immediate use, held for `duration` *after* it activates. The
  /// reservation window booked in the calendar is
  /// [predicted activation, predicted activation + duration).
  SubmitResult request_immediate(net::NodeId src, net::NodeId dst, BitsPerSecond bandwidth,
                                 Seconds duration, CircuitFn on_active = nullptr,
                                 CircuitFn on_release = nullptr,
                                 CircuitFn on_failure = nullptr);

  /// Cancel a reservation that has not yet activated.
  void cancel(std::uint64_t circuit_id);

  /// OSCARS modifyReservation: change a scheduled (not yet active)
  /// reservation's bandwidth and/or extend/shorten its end time. The
  /// change is admitted against the calendar with the old booking
  /// removed (flat first; malleable reservations that no longer fit flat
  /// are re-shaped); on rejection the old booking — flat or shaped — is
  /// reinstated untouched. Returns true when the modification was
  /// admitted.
  bool modify_reservation(std::uint64_t circuit_id, BitsPerSecond new_bandwidth,
                          Seconds new_end_time);

  /// Control-plane reaction to a link failure. Scheduled circuits whose
  /// path uses `failed_link` are re-pathed around it synchronously if the
  /// calendar allows, and cancelled otherwise; the return value counts
  /// these synchronous re-paths. Active circuits lose their data plane
  /// *now*: they transition to CircuitState::kFailed, their booking is
  /// freed, on_failure fires, and (per IdcConfig::resignal_on_failure)
  /// an asynchronous re-signal with backoff tries to re-home them.
  /// Subsequent path computation avoids the failed link until
  /// restore_link() is called.
  std::size_t handle_link_failure(net::LinkId failed_link);

  /// Return a previously failed link to service.
  void restore_link(net::LinkId link);

  /// Control-plane outage window: while in_outage(), create_reservation
  /// fails fast with RejectReason::kControlPlaneDown and re-signal probes
  /// count as breaker failures. Idempotent per state.
  void begin_outage();
  void end_outage();
  bool in_outage() const { return in_outage_; }

  /// Rebuild the live reservation set from the configured journal after a
  /// crash/restart. For each surviving record whose window has not
  /// expired, the path is recomputed and the *remaining* window rebooked;
  /// records that no longer fit (expired, or the calendar/topology moved
  /// on) are dropped and tombstoned. Lifecycle callbacks do not survive a
  /// process crash — recovered circuits re-activate without notifying the
  /// (dead) original requester, as a real restarted OSCARS would.
  /// Requires a journal and an empty IDC; returns the count restored.
  std::size_t recover_from_journal();

  /// Re-signaling circuit breaker state (for tests and chaos invariants).
  const recovery::CircuitBreaker& breaker() const { return breaker_; }

  /// Tear down an active circuit before its endTime; the calendar tail is
  /// returned to the pool. Lenient on circuits that already reached a
  /// terminal state (released, cancelled, or failed) — a caller's teardown
  /// legitimately races the circuit's own lifecycle; a kFailed circuit
  /// with a pending re-signal has the re-signal dropped and is retired.
  void release_now(std::uint64_t circuit_id);

  /// Lifecycle record of a live or recently-terminal circuit. Terminal
  /// records (released/cancelled/failed) are kept in a bounded store, so
  /// very old ids may have been evicted; lookups of those throw.
  const Circuit& circuit(std::uint64_t circuit_id) const;
  const BandwidthCalendar& calendar() const { return calendar_; }

  /// Circuits still carrying live control-plane state (scheduled, active,
  /// or awaiting re-signal). Terminal circuits are moved to the bounded
  /// terminal store, so this never grows with run length.
  std::size_t live_circuit_count() const { return entries_.size(); }

  /// Terminal lifecycle records currently retained
  /// (<= IdcConfig::terminal_capacity).
  std::size_t terminal_record_count() const { return terminal_.size(); }

  /// Default for IdcConfig::terminal_capacity.
  static constexpr std::size_t kTerminalCapacity = 256;

  /// The activation time the current signaling mode would give a request
  /// submitted at `submit_time` for a circuit wanted from `start_time`.
  Seconds predicted_activation(Seconds submit_time, Seconds start_time) const;

  /// Counters for blocking-probability studies (Ablation D).
  ///
  /// A request marked ReservationRequest::is_retry that is rejected again
  /// lands in `rejected_retries` only: the per-reason counters and
  /// blocking_probability() see each blocked demand exactly once, however
  /// many times the caller retries it.
  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t rejected_no_bandwidth = 0;
    std::uint64_t rejected_no_route = 0;
    std::uint64_t rejected_invalid = 0;
    std::uint64_t rejected_retries = 0;  ///< re-rejections of retried requests
    std::uint64_t released = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t failed = 0;      ///< active circuits that lost their path
    std::uint64_t resignaled = 0;  ///< failed circuits successfully re-homed
    std::uint64_t outages = 0;          ///< control-plane outage windows entered
    std::uint64_t rejected_outage = 0;  ///< fail-fast rejections during outages
    std::uint64_t recovered = 0;        ///< reservations rebuilt from the journal
    std::uint64_t shaped = 0;        ///< malleable admissions that needed shaping
    std::uint64_t defragmented = 0;  ///< shaped admissions that needed defrag
    std::uint64_t rerouted = 0;      ///< shaped admissions off the primary route

    /// Admission-verdict blocking probability (the paper's call-blocking
    /// statistic): of the demands the IDC actually *evaluated*, the
    /// fraction blocked for capacity or connectivity. Outage fail-fasts
    /// never reached admission, so they are excluded here — use
    /// rejection_rate() for the client-observed failure fraction.
    double blocking_probability() const {
      const double total = static_cast<double>(accepted + rejected_no_bandwidth +
                                               rejected_no_route + rejected_invalid);
      return total > 0.0
                 ? static_cast<double>(rejected_no_bandwidth + rejected_no_route) / total
                 : 0.0;
    }

    /// Client-observed rejection fraction: every first-submission outcome
    /// counts, *including* outage fail-fasts (a client whose request dies
    /// against a down control plane was rejected, whatever the reason).
    /// `rejected_retries` stays out of both numerator and denominator by
    /// design — a retried demand already counted when it first blocked,
    /// and folding retries in would double-count one blocked demand.
    double rejection_rate() const {
      const double rejections =
          static_cast<double>(rejected_no_bandwidth + rejected_no_route +
                              rejected_invalid + rejected_outage);
      const double total = static_cast<double>(accepted) + rejections;
      return total > 0.0 ? rejections / total : 0.0;
    }
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Entry {
    Circuit circuit;
    ReservationId booking = 0;
    /// Activation instant the booking was admitted against (the shaping
    /// window starts here; a shaped profile may begin later if the first
    /// headroom slice was full).
    Seconds activation = 0.0;
    CircuitFn on_active;
    CircuitFn on_release;
    CircuitFn on_failure;
    sim::EventHandle activate_event;
    sim::EventHandle release_event;
    sim::EventHandle resignal_event;
    int resignal_attempts = 0;
  };

  /// Administrative + failure filter shared by every path search.
  bool link_usable(net::LinkId link) const;

  void activate(std::uint64_t id);
  void release(std::uint64_t id);
  /// End of a circuit's booked window: the profile's last segment end for
  /// shaped circuits (shaping may deliver the volume before endTime),
  /// request.end_time otherwise.
  static Seconds booked_end(const Circuit& c);
  /// Greedy earliest-fill shaper (Chen & Primet): pack the request's
  /// volume (bandwidth x [activation, endTime)) into the path's headroom
  /// as stepwise segments, each capped by max_bandwidth (when positive)
  /// and floored to whole kbit/s so calendar arithmetic stays exact.
  /// `earliest` floors where the fill may begin without shrinking the
  /// volume owed — reshaping a displaced circuit mid-flight must deliver
  /// its full admitted volume but may only book from now on.
  /// nullopt when the path cannot deliver the volume by the deadline.
  std::optional<std::vector<RateSegment>> shape_request(const net::Path& path,
                                                        const ReservationRequest& request,
                                                        Seconds activation,
                                                        Seconds earliest = 0.0) const;
  /// Defragmentation: temporarily release every *scheduled* malleable
  /// circuit sharing a link with `path` over the request window, shape
  /// the new request into the opened gap, then re-shape the displaced
  /// circuits (ascending id). All-or-nothing: any failure reinstates
  /// every displaced booking exactly and returns nullopt.
  std::optional<std::vector<RateSegment>> shape_with_defrag(const net::Path& path,
                                                            const ReservationRequest& request,
                                                            Seconds activation);
  /// Active circuit lost `failed_link`: kFailed + on_failure + re-signal.
  void fail_active(std::uint64_t id, net::LinkId failed_link);
  void schedule_resignal(std::uint64_t id);
  void try_resignal(std::uint64_t id);
  /// Move a terminal circuit's record to the bounded terminal store and
  /// drop its entry (events cancelled). No-op for unknown ids.
  void retire(std::uint64_t id);
  /// Record a rejection in stats/metrics, honouring the is_retry rule.
  void count_rejection(const ReservationRequest& request, RejectReason reason);
  /// Append (or re-append after modify/defrag) an accepted reservation to
  /// the configured journal, shaped profile included. No-op without a
  /// journal.
  void journal_reservation(std::uint64_t id, const ReservationRequest& request,
                           Seconds activation, const std::vector<RateSegment>& profile);
  /// Refresh the calendar-bookings gauge after any book/release.
  void sync_calendar_gauge();

  sim::Simulator& sim_;
  const net::Topology& topo_;
  IdcConfig config_;
  BandwidthCalendar calendar_;
  LinkPolicy user_policy_;
  std::set<net::LinkId> failed_links_;
  PathComputer paths_;
  std::map<std::uint64_t, Entry> entries_;
  /// Bounded record of terminal circuits (kTerminalCapacity newest ids):
  /// keeps circuit() answerable for recently finished circuits without
  /// growing entries_ forever.
  std::map<std::uint64_t, Circuit> terminal_;
  std::uint64_t next_id_ = 1;
  Stats stats_;
  std::size_t active_circuits_ = 0;
  recovery::CircuitBreaker breaker_;
  bool in_outage_ = false;
  std::uint64_t outage_count_ = 0;
  Seconds outage_began_ = 0.0;
  obs::MetricId id_requests_;
  obs::MetricId id_accepted_;
  obs::MetricId id_rejected_no_bandwidth_;
  obs::MetricId id_rejected_no_route_;
  obs::MetricId id_rejected_invalid_;
  obs::MetricId id_rejected_retries_;
  obs::MetricId id_rejected_outage_;
  obs::MetricId id_outages_;
  obs::MetricId id_released_;
  obs::MetricId id_cancelled_;
  obs::MetricId id_repathed_;
  obs::MetricId id_shaped_;
  obs::MetricId id_defragmented_;
  obs::MetricId id_rerouted_;
  obs::MetricId id_failed_;
  obs::MetricId id_resignaled_;
  obs::MetricId id_active_gauge_;
  obs::MetricId id_bookings_gauge_;
  obs::MetricId id_setup_delay_hist_;
  obs::MetricId id_resignal_delay_hist_;
};

}  // namespace gridvc::vc
