// Reservation request/record types shared by the IDC and the inter-domain
// coordinator. Field names mirror the OSCARS createReservation message
// described in §IV: startTime, endTime, bandwidth, and circuit endpoints.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "net/topology.hpp"

namespace gridvc::vc {

/// One constant-rate step of a shaped (malleable) reservation. A shaped
/// profile is a time-ascending, non-overlapping sequence of these;
/// gaps between segments mean "no guarantee in force".
struct RateSegment {
  Seconds start = 0.0;
  Seconds end = 0.0;
  BitsPerSecond rate = 0.0;

  bool operator==(const RateSegment&) const = default;
};

/// Total volume (bits) a stepwise profile delivers.
inline double profile_volume(const std::vector<RateSegment>& profile) {
  double bits = 0.0;
  for (const RateSegment& s : profile) bits += s.rate * (s.end - s.start);
  return bits;
}

/// How circuit provisioning is triggered (§IV).
enum class SignalingMode : std::uint8_t {
  /// "automatic signaling": the IDC batches provisioning requests that
  /// start in the next minute and sends them to the ingress router in
  /// batch mode — a request for immediate use therefore waits for the
  /// next batch boundary (the "minimum 1-min VC setup delay").
  kBatchedAutomatic,
  /// Hypothetical hardware-assisted signaling: per-request setup after a
  /// fixed processing + propagation delay (the paper's 50 ms scenario,
  /// citing [22]).
  kImmediate,
};

/// A createReservation message.
struct ReservationRequest {
  net::NodeId src = 0;
  net::NodeId dst = 0;
  BitsPerSecond bandwidth = 0.0;
  Seconds start_time = 0.0;  ///< requested circuit start (absolute sim time)
  Seconds end_time = 0.0;    ///< requested circuit end
  std::string description;   ///< free-form, for logs
  /// Marks a resubmission of a request the IDC already rejected (e.g. the
  /// same demand retried with lower bandwidth or a shifted window). The
  /// IDC books a retried rejection under Stats::rejected_retries instead
  /// of the per-reason counters, so one blocked demand never counts as
  /// two independent rejections in blocking-probability studies.
  bool is_retry = false;
  /// Malleable (flexible) reservation per Chen & Primet: the request is
  /// really a *volume* demand — bandwidth x booked window — and the IDC
  /// may reshape how that volume is delivered as a stepwise rate profile
  /// inside the window, instead of rejecting when the flat rate does not
  /// fit. `bandwidth` then reads as the preferred flat rate; any request
  /// a fixed-window scheduler admits, a malleable one admits too (the
  /// flat shape is always among the candidates).
  bool malleable = false;
  /// Cap on any single shaped step of a malleable reservation. <= 0
  /// means only link headroom caps the steps; a positive value must be
  /// >= bandwidth (a cap below the preferred rate could not even carry
  /// the flat shape and is rejected as invalid).
  BitsPerSecond max_bandwidth = 0.0;
};

enum class CircuitState : std::uint8_t {
  kScheduled,   ///< accepted, waiting for provisioning
  kSettingUp,   ///< provisioning messages in flight
  kActive,      ///< data plane configured; rate guarantee in force
  kReleased,    ///< torn down (end reached or cancelled after activation)
  kCancelled,   ///< cancelled before activation
  kFailed,      ///< a link on the path died while active; guarantee lost
};

/// An accepted reservation and its circuit lifecycle record.
struct Circuit {
  std::uint64_t id = 0;
  ReservationRequest request;
  net::Path path;            ///< explicit path selected by the controller
  CircuitState state = CircuitState::kScheduled;
  Seconds provision_started = 0.0;  ///< when setup signaling began
  Seconds active_at = 0.0;          ///< when the guarantee took effect (last activation)
  Seconds released_at = 0.0;
  Seconds failed_at = 0.0;          ///< when the path died (kFailed and after)

  /// Shaped stepwise rate profile in force. Empty for fixed-window
  /// circuits (the guarantee is flat `request.bandwidth` over the booked
  /// window); non-empty only when the IDC reshaped a malleable request.
  /// Segments are time-ascending and non-overlapping; the data plane
  /// should follow rate_at().
  std::vector<RateSegment> profile;

  /// Rate the data plane should enforce at instant `t`:
  /// request.bandwidth when the profile is empty, else the rate of the
  /// segment containing `t` (0 in gaps and outside the profile).
  BitsPerSecond rate_at(Seconds t) const {
    if (profile.empty()) return request.bandwidth;
    for (const RateSegment& s : profile) {
      if (t < s.start) break;
      if (t < s.end) return s.rate;
    }
    return 0.0;
  }

  /// Observed setup delay (active_at - the time the user asked for the
  /// circuit to be usable). Meaningful once kActive.
  Seconds setup_delay() const { return active_at - request.start_time; }
};

/// Why a reservation was rejected.
enum class RejectReason : std::uint8_t {
  kNoRoute,          ///< endpoints not connected by reservable links
  kInsufficientBandwidth,  ///< no path with enough calendar headroom
  kInvalidRequest,   ///< malformed window or rate
  /// The IDC itself is unreachable (control-plane outage): the request
  /// fails fast without path computation. Not an admission verdict, so it
  /// is excluded from blocking-probability statistics.
  kControlPlaneDown,
};

}  // namespace gridvc::vc
