// Reservation request/record types shared by the IDC and the inter-domain
// coordinator. Field names mirror the OSCARS createReservation message
// described in §IV: startTime, endTime, bandwidth, and circuit endpoints.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "net/topology.hpp"

namespace gridvc::vc {

/// How circuit provisioning is triggered (§IV).
enum class SignalingMode : std::uint8_t {
  /// "automatic signaling": the IDC batches provisioning requests that
  /// start in the next minute and sends them to the ingress router in
  /// batch mode — a request for immediate use therefore waits for the
  /// next batch boundary (the "minimum 1-min VC setup delay").
  kBatchedAutomatic,
  /// Hypothetical hardware-assisted signaling: per-request setup after a
  /// fixed processing + propagation delay (the paper's 50 ms scenario,
  /// citing [22]).
  kImmediate,
};

/// A createReservation message.
struct ReservationRequest {
  net::NodeId src = 0;
  net::NodeId dst = 0;
  BitsPerSecond bandwidth = 0.0;
  Seconds start_time = 0.0;  ///< requested circuit start (absolute sim time)
  Seconds end_time = 0.0;    ///< requested circuit end
  std::string description;   ///< free-form, for logs
  /// Marks a resubmission of a request the IDC already rejected (e.g. the
  /// same demand retried with lower bandwidth or a shifted window). The
  /// IDC books a retried rejection under Stats::rejected_retries instead
  /// of the per-reason counters, so one blocked demand never counts as
  /// two independent rejections in blocking-probability studies.
  bool is_retry = false;
};

enum class CircuitState : std::uint8_t {
  kScheduled,   ///< accepted, waiting for provisioning
  kSettingUp,   ///< provisioning messages in flight
  kActive,      ///< data plane configured; rate guarantee in force
  kReleased,    ///< torn down (end reached or cancelled after activation)
  kCancelled,   ///< cancelled before activation
  kFailed,      ///< a link on the path died while active; guarantee lost
};

/// An accepted reservation and its circuit lifecycle record.
struct Circuit {
  std::uint64_t id = 0;
  ReservationRequest request;
  net::Path path;            ///< explicit path selected by the controller
  CircuitState state = CircuitState::kScheduled;
  Seconds provision_started = 0.0;  ///< when setup signaling began
  Seconds active_at = 0.0;          ///< when the guarantee took effect (last activation)
  Seconds released_at = 0.0;
  Seconds failed_at = 0.0;          ///< when the path died (kFailed and after)

  /// Observed setup delay (active_at - the time the user asked for the
  /// circuit to be usable). Meaningful once kActive.
  Seconds setup_delay() const { return active_at - request.start_time; }
};

/// Why a reservation was rejected.
enum class RejectReason : std::uint8_t {
  kNoRoute,          ///< endpoints not connected by reservable links
  kInsufficientBandwidth,  ///< no path with enough calendar headroom
  kInvalidRequest,   ///< malformed window or rate
  /// The IDC itself is unreachable (control-plane outage): the request
  /// fails fast without path computation. Not an admission verdict, so it
  /// is excluded from blocking-probability statistics.
  kControlPlaneDown,
};

}  // namespace gridvc::vc
