// Advance-reservation bandwidth bookkeeping.
//
// OSCARS-style dynamic circuit service accepts reservations of a given
// rate over a future [start, end) window (§II: "advance-reservation
// service is required when the requested circuit rate is a significant
// portion of link capacity if the network is to be operated at high
// utilization and with low call blocking probability"). The calendar
// tracks, per link, the piecewise-constant sum of reserved rates over
// time, and admits a new reservation only if the peak reserved rate over
// its window stays within the link's reservable capacity.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/units.hpp"
#include "net/topology.hpp"

namespace gridvc::vc {

using ReservationId = std::uint64_t;

/// Piecewise-constant reserved-rate profile of one link.
///
/// Mutations maintain a delta map; queries run against a lazily rebuilt
/// prefix-level cache (sorted change times + cumulative level after each),
/// so `at()` is one binary search and `peak()` is a binary search plus a
/// scan of only the deltas inside the queried window — not a sweep of the
/// whole calendar from t=0 as the map encoding alone would require.
class BandwidthProfile {
 public:
  /// Add `rate` over [start, end). Requires start < end and rate > 0.
  void add(Seconds start, Seconds end, BitsPerSecond rate);

  /// Remove a previously added block (exact inverse of add).
  void remove(Seconds start, Seconds end, BitsPerSecond rate);

  /// Peak reserved rate over [start, end).
  BitsPerSecond peak(Seconds start, Seconds end) const;

  /// Reserved rate at instant `t`.
  BitsPerSecond at(Seconds t) const;

  /// True when nothing is reserved at any time.
  bool empty() const;

 private:
  void ensure_cache() const;

  // Delta encoding: deltas_[t] is the change in reserved rate at time t.
  // Entries are erased only on *exact* cancellation — an epsilon test
  // here would silently drop legitimately tiny residual rates.
  std::map<Seconds, BitsPerSecond> deltas_;

  // Query cache: cache_levels_[i] is the reserved rate in force from
  // cache_times_[i] (inclusive) until the next change time.
  mutable std::vector<Seconds> cache_times_;
  mutable std::vector<BitsPerSecond> cache_levels_;
  mutable bool cache_valid_ = false;
};

/// Per-topology calendar over all links.
class BandwidthCalendar {
 public:
  /// `reservable_fraction` caps how much of each link's capacity circuits
  /// may claim (providers keep headroom for IP-routed traffic).
  explicit BandwidthCalendar(const net::Topology& topo, double reservable_fraction = 1.0);

  /// Max rate still reservable on `link` everywhere in [start, end).
  BitsPerSecond available(net::LinkId link, Seconds start, Seconds end) const;

  /// True iff `rate` fits on every link of `path` over the whole window.
  bool fits(const net::Path& path, Seconds start, Seconds end, BitsPerSecond rate) const;

  /// Book `rate` on every link of `path` over [start, end). Returns a
  /// booking id used for release. Requires fits(...) — callers are
  /// expected to check first; booking a non-fitting request throws.
  ReservationId book(const net::Path& path, Seconds start, Seconds end, BitsPerSecond rate);

  /// Release a booking in full (idempotent release of an unknown id throws).
  void release(ReservationId id);

  /// Truncate a booking's end time (early circuit teardown releases the
  /// tail of the window for other users). `new_end` must lie in
  /// [start, end].
  void truncate(ReservationId id, Seconds new_end);

  std::size_t active_bookings() const { return bookings_.size(); }

 private:
  struct Booking {
    net::Path path;
    Seconds start, end;
    BitsPerSecond rate;
  };

  const net::Topology& topo_;
  double reservable_fraction_;
  std::vector<BandwidthProfile> profiles_;  // one per link
  std::map<ReservationId, Booking> bookings_;
  ReservationId next_id_ = 1;
};

}  // namespace gridvc::vc
