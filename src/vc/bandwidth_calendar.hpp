// Advance-reservation bandwidth bookkeeping.
//
// OSCARS-style dynamic circuit service accepts reservations of a given
// rate over a future [start, end) window (§II: "advance-reservation
// service is required when the requested circuit rate is a significant
// portion of link capacity if the network is to be operated at high
// utilization and with low call blocking probability"). The calendar
// tracks, per link, the piecewise-constant sum of reserved rates over
// time, and admits a new reservation only if the peak reserved rate over
// its window stays within the link's reservable capacity.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "common/hugepage_alloc.hpp"
#include "common/units.hpp"
#include "net/topology.hpp"
#include "vc/reservation.hpp"

namespace gridvc::vc {

using ReservationId = std::uint64_t;

/// Fixed-point reserved rate: integer kbit/s. All calendar arithmetic is
/// exact in this representation, so a release always cancels its booking
/// to the bit — no float dust can accumulate over any number of
/// book/release cycles.
using RateKbps = std::int64_t;

/// Quantize a bits/s rate onto the calendar's kbit/s grid: round to
/// nearest, but never below one quantum, so every positive rate stays
/// visible and add/remove with the same argument cancel exactly.
inline RateKbps quantize_rate_kbps(BitsPerSecond rate) {
  const RateKbps q = std::llround(rate / 1000.0);
  return q > 0 ? q : 1;
}

/// Piecewise-constant reserved-rate profile of one link.
///
/// The profile is a delta encoding (change in reserved rate at each time
/// point) stored in an augmented B+ tree keyed by time. Every subtree
/// carries two aggregates — the sum of its deltas and the maximum
/// non-empty prefix sum of its in-order delta sequence — so a point
/// update is O(log n) and `peak(start, end)` decomposes the window into
/// O(log n) subtrees whose aggregates answer "highest level reached
/// inside" without sweeping. Wide nodes (32 entries / 32 children, laid
/// out as per-field arrays) keep the hot search path to a handful of
/// sequential cache lines per level: at one million reservations a walk
/// touches ~5 nodes instead of the ~21 dependent cache misses a binary
/// tree would take, which is what keeps the admit/free scale curve flat.
/// Rates are held as integer kbit/s (see RateKbps), which makes
/// add/remove cancellation exact: a balanced sequence of operations
/// always returns the tree to empty.
class BandwidthProfile {
 public:
  /// Add `rate` over [start, end). Requires start < end and rate > 0.
  void add(Seconds start, Seconds end, BitsPerSecond rate);

  /// Remove a previously added block (exact inverse of add).
  /// Requires start < end and rate > 0.
  void remove(Seconds start, Seconds end, BitsPerSecond rate);

  /// Move a block's end marker from `old_end` to `new_end` (early
  /// teardown truncating [start, old_end) to [start, new_end)): two
  /// point updates instead of the four a remove+add pair would cost.
  /// Requires new_end < old_end and rate > 0.
  void shift_end(Seconds old_end, Seconds new_end, BitsPerSecond rate);

  /// Peak reserved rate over [start, end). The empty window [t, t)
  /// contains no instant, so its peak is 0.
  BitsPerSecond peak(Seconds start, Seconds end) const;

  /// Reserved rate at instant `t`.
  BitsPerSecond at(Seconds t) const;

  /// Visit every change point with key in [start, end), in time order.
  /// The shaping pass uses this to discretize a window at the points
  /// where headroom can change; tests use it to compare calendar state
  /// exactly (the delta sequence IS the profile, bit for bit).
  void for_each_delta(Seconds start, Seconds end,
                      const std::function<void(Seconds, RateKbps)>& fn) const;

  /// True when nothing is reserved at any time.
  bool empty() const { return entry_count_ == 0; }

  /// Live change points in the tree. Balanced add/remove sequences
  /// return this to 0; the float-dust regression test pins that bound.
  std::size_t node_count() const { return entry_count_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr RateKbps kNoLevel = std::numeric_limits<RateKbps>::min() / 2;
  // Wide nodes: a leaf holds up to 32 (time, delta) entries, an inner
  // node up to 32 children. Minimum fills are chosen so that merging two
  // minimal siblings leaves room for one more insert (2 * min < cap),
  // which lets apply() rebalance preemptively on the way down — it never
  // knows until the leaf whether the op inserts or erases.
  static constexpr int kLeafCap = 32;
  static constexpr int kLeafMin = 12;
  static constexpr int kInnerCap = 32;
  static constexpr int kInnerMin = 12;

  /// Sorted run of change points. Aggregates live in the parent; the
  /// root-is-leaf case recomputes them on the fly (O(kLeafCap)).
  struct Leaf {
    std::uint16_t n = 0;
    Seconds key[kLeafCap];
    RateKbps delta[kLeafCap];
  };

  /// Routing node. Per-child copies of the subtree aggregates (delta sum
  /// and max non-empty prefix sum) and the subtree's max key make both
  /// the point-update descent and the peak range query touch only nodes
  /// on the boundary paths; fully covered children are O(1) reads here.
  /// The per-child fields are interleaved (32 bytes, two per cache line)
  /// so a routing scan is one sequential stream and the chosen child's
  /// aggregates share a line with the key that selected it.
  struct ChildRef {
    Seconds max_key;
    RateKbps sum;
    RateKbps maxp;
    std::uint32_t child;
  };
  struct Inner {
    std::uint16_t n = 0;      // child count
    bool child_leaf = false;  // true when children are leaves
    ChildRef ent[kInnerCap];
  };

  std::uint32_t alloc_leaf();
  std::uint32_t alloc_inner();
  void free_leaf(std::uint32_t id);
  void free_inner(std::uint32_t id);

  /// Recompute parent->(max_key, sum, maxp) for child slot `i` from the
  /// child node itself.
  void refresh_child_meta(Inner& parent, int i) const;
  /// Index of the child that owns key `t` (first child with
  /// max_key >= t, else the last child).
  static int pick_child(const Inner& nd, Seconds t);

  /// Split the full child `i` of `parent` in two (child keeps the lower
  /// half). Grows the slabs; callers must refetch references.
  void split_child(std::uint32_t parent_id, int i);
  /// Restore slack to child `i` sitting at minimum fill: borrow one
  /// entry/child from a sibling, or merge with it when it is minimal too.
  void fix_child(std::uint32_t parent_id, int i);

  /// Add `d` to the delta at `t`, inserting or erasing the entry as
  /// needed; recursive arm over inner nodes.
  void apply_inner(std::uint32_t node_id, Seconds t, RateKbps d);
  void apply_leaf(std::uint32_t leaf_id, Seconds t, RateKbps d);
  void apply_delta(Seconds t, RateKbps d);

  /// Sum of deltas with key <= t (the level in force at instant t).
  RateKbps level_at(Seconds t) const;
  /// One-walk window query: `best` is the max level over change points
  /// with key strictly in (lo, hi) (kNoLevel when none), `entry` the
  /// level in force at instant lo. `base` is the level just before this
  /// subtree's first key; the left boundary path of the range
  /// decomposition doubles as the entry-level walk, so peak() costs a
  /// single descent instead of two.
  struct WindowLevels {
    RateKbps best;
    RateKbps entry;
  };
  WindowLevels window_levels(std::uint32_t node_id, bool is_leaf, Seconds lo, Seconds hi,
                             RateKbps base) const;

  // Slabs are hugepage-backed: at scale they dominate the working set
  // and 2 MiB pages keep the descent off the page-walker (see
  // common/hugepage_alloc.hpp).
  std::vector<Leaf, HugePageAllocator<Leaf>> leaves_;    // slab; index = leaf id
  std::vector<Inner, HugePageAllocator<Inner>> inners_;  // slab; index = inner id
  std::vector<std::uint32_t> free_leaves_;
  std::vector<std::uint32_t> free_inners_;
  std::uint32_t root_ = kNil;
  bool root_leaf_ = true;
  std::size_t entry_count_ = 0;
};

/// Per-topology calendar over all links.
class BandwidthCalendar {
 public:
  /// `reservable_fraction` caps how much of each link's capacity circuits
  /// may claim (providers keep headroom for IP-routed traffic).
  explicit BandwidthCalendar(const net::Topology& topo, double reservable_fraction = 1.0);

  /// Max rate still reservable on `link` everywhere in [start, end).
  /// The empty window [t, t) has the full reservable capacity available.
  BitsPerSecond available(net::LinkId link, Seconds start, Seconds end) const;

  /// True iff `rate` fits on every link of `path` over the whole window.
  bool fits(const net::Path& path, Seconds start, Seconds end, BitsPerSecond rate) const;

  /// True iff every segment of `profile` fits on every link of `path`.
  /// Segments must be valid (start < end, rate > 0) and time-ascending
  /// without overlap, as book_profile requires.
  bool fits_profile(const net::Path& path, const std::vector<RateSegment>& profile) const;

  /// Book `rate` on every link of `path` over [start, end). Returns a
  /// booking id used for release. Requires fits(...) — callers are
  /// expected to check first; booking a non-fitting request throws.
  ReservationId book(const net::Path& path, Seconds start, Seconds end, BitsPerSecond rate);

  /// Book a shaped stepwise profile on every link of `path`: one slab
  /// entry, N profile deltas. Requires fits_profile(...); segments must
  /// be time-ascending and non-overlapping with start < end and
  /// rate > 0. Released/truncated through the same id as flat bookings.
  ReservationId book_profile(const net::Path& path, std::vector<RateSegment> profile);

  /// Release a booking in full. Not idempotent: releasing an unknown or
  /// already-released id throws, so double releases surface as bugs
  /// instead of silently unbalancing the calendar.
  void release(ReservationId id);

  /// Truncate a booking's end time (early circuit teardown releases the
  /// tail of the window for other users). Requires new_end <= end. A
  /// new_end at or before the booking's start is a full release — no
  /// residual deltas survive, the slab slot is recycled, and the id goes
  /// stale (generation bumped) exactly as release() would leave it.
  /// Otherwise a single end-shift per link for flat bookings — the start
  /// marker is untouched; shaped bookings drop/clip their tail segments.
  void truncate(ReservationId id, Seconds new_end);

  /// Stepwise headroom over [start, end) on `path`: at each instant the
  /// minimum across links of (reservable capacity - reserved rate),
  /// broken at every change point of any link's profile and with equal
  /// adjacent pieces merged. This is the input the malleable shaper
  /// packs volume into.
  std::vector<RateSegment> headroom_profile(const net::Path& path, Seconds start,
                                            Seconds end) const;

  /// The shaped segments of a booking (empty for flat bookings).
  const std::vector<RateSegment>& booking_segments(ReservationId id) const;

  /// Full delta sequence (time, kbit/s change) of one link's profile.
  /// Deterministic and exact — two calendars with equal link_deltas on
  /// every link admit exactly the same futures. Tests use this to prove
  /// a rejected admission reinstated prior state byte for byte.
  std::vector<std::pair<Seconds, RateKbps>> link_deltas(net::LinkId link) const;

  std::size_t active_bookings() const { return active_; }

 private:
  /// Slab record for one reservation. Slots are recycled through a free
  /// list; the generation is bumped on every release so stale ids are
  /// rejected, and the path vector keeps its capacity across reuse, so a
  /// steady-state book/release cycle allocates nothing.
  struct Booking {
    net::Path path;
    Seconds start = 0.0, end = 0.0;
    BitsPerSecond rate = 0.0;
    /// Shaped bookings carry their stepwise profile here (empty = flat).
    /// start/end span the whole profile and rate is 0; release/truncate
    /// walk the segments instead of the flat block. The vector keeps its
    /// capacity across slot reuse, like path.
    std::vector<RateSegment> segments;
    std::uint32_t generation = 0;
    bool live = false;
  };

  /// Ids encode (generation << 32) | (slot + 1): nonzero by construction
  /// (callers use 0 as a "no booking" sentinel), O(1) to resolve, and
  /// impossible to confuse with a recycled slot's newer booking.
  Booking& resolve(ReservationId id, const char* what);

  const net::Topology& topo_;
  double reservable_fraction_;
  std::vector<BandwidthProfile> profiles_;  // one per link
  std::vector<Booking> bookings_;           // slab, indexed by slot
  std::vector<std::uint32_t> free_slots_;
  std::size_t active_ = 0;
};

}  // namespace gridvc::vc
