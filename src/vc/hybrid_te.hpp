// Hybrid network traffic engineering (HNTES-style).
//
// §IV's intra-domain story: the provider preconfigures circuits between
// ingress-egress router pairs, identifies alpha flows online, and
// redirects their packets onto the circuits — no per-flow signaling, no
// end-user involvement. The HybridTrafficEngineer implements that control
// loop over the flow-level network:
//
//   poll the data plane -> feed the AlphaDetector -> on promotion,
//   grant the flow a rate guarantee drawn from the preprovisioned
//   circuit-bandwidth pool -> return the bandwidth when the flow ends.
//
// The guarantee stands in for the MPLS LSP redirection: on the fluid
// network, "redirected onto the circuit" and "carried with a rate
// guarantee on the same links" are equivalent.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "net/network.hpp"
#include "vc/alpha_detector.hpp"

namespace gridvc::vc {

struct HybridTeConfig {
  AlphaDetectorConfig detector;
  /// Operator scoping: only flows this predicate accepts are watched at
  /// all (HNTES identifies science flows offline by DTN address pairs;
  /// the provider does not grant circuits to arbitrary traffic). Null
  /// means every flow is eligible.
  std::function<bool(net::FlowId)> eligible;
  /// Data-plane polling cadence.
  Seconds poll_period = 5.0;
  /// Total preprovisioned intra-domain circuit bandwidth.
  BitsPerSecond circuit_pool = gbps(8.0);
  /// Guarantee granted to each redirected flow (clipped to pool headroom).
  BitsPerSecond per_flow_guarantee = gbps(1.0);
};

class HybridTrafficEngineer {
 public:
  /// Starts polling `network` immediately; stops when destroyed.
  HybridTrafficEngineer(net::Network& network, HybridTeConfig config);
  ~HybridTrafficEngineer();
  HybridTrafficEngineer(const HybridTrafficEngineer&) = delete;
  HybridTrafficEngineer& operator=(const HybridTrafficEngineer&) = delete;

  void stop();

  struct Stats {
    std::size_t flows_observed = 0;   ///< distinct flows ever polled
    std::size_t flows_redirected = 0; ///< promoted to the circuit pool
    std::size_t redirections_denied = 0;  ///< promoted but pool exhausted
    /// Bytes moved by redirected flows *after* their redirection — the
    /// payoff metric: how much alpha traffic the circuits absorbed.
    double redirected_bytes = 0.0;
  };
  const Stats& stats() const { return stats_; }

  /// Circuit-pool bandwidth currently granted.
  BitsPerSecond pool_in_use() const { return pool_in_use_; }

 private:
  void poll();
  void promote(net::FlowId id);

  net::Network& network_;
  HybridTeConfig config_;
  AlphaDetector detector_;

  struct Redirected {
    BitsPerSecond guarantee = 0.0;
    Bytes bytes_at_promotion = 0;
    Bytes last_seen_bytes = 0;
  };
  std::map<net::FlowId, Redirected> redirected_;
  std::map<net::FlowId, bool> seen_;  // value: still active last poll
  BitsPerSecond pool_in_use_ = 0.0;
  Stats stats_;
  sim::EventHandle tick_;
};

}  // namespace gridvc::vc
