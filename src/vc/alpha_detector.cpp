#include "vc/alpha_detector.hpp"

#include "common/error.hpp"

namespace gridvc::vc {

AlphaDetector::AlphaDetector(AlphaDetectorConfig config, PromotionFn on_promote)
    : config_(config), on_promote_(std::move(on_promote)) {
  GRIDVC_REQUIRE(config_.min_bytes > 0, "alpha threshold volume must be positive");
  GRIDVC_REQUIRE(config_.min_rate > 0.0, "alpha threshold rate must be positive");
  GRIDVC_REQUIRE(config_.window > 0.0, "alpha window must be positive");
}

void AlphaDetector::observe(FlowKey key, Bytes cumulative_bytes, Seconds now) {
  auto [it, inserted] = flows_.try_emplace(key);
  State& s = it->second;
  if (inserted) {
    s.first_seen = now;
    s.window_start = now;
    s.window_start_bytes = cumulative_bytes;
    s.last_bytes = cumulative_bytes;
    s.last_time = now;
    return;
  }
  GRIDVC_REQUIRE(now >= s.last_time, "observations must be time-ordered");
  GRIDVC_REQUIRE(cumulative_bytes >= s.last_bytes,
                 "cumulative byte counts must be non-decreasing");
  s.last_bytes = cumulative_bytes;
  s.last_time = now;
  if (s.alpha) return;

  // Slide the window anchor forward once the window is over-full, so the
  // rate estimate stays a *trailing* rate rather than a lifetime average
  // (a flow that stalls must be able to fall below the bar again).
  if (now - s.window_start > 2.0 * config_.window) {
    s.window_start = now - config_.window;
    // Approximate the anchor bytes linearly between the old anchor and
    // the present; exact bookkeeping would need a sample ring, and the
    // detector only needs threshold-crossing fidelity.
    const double span = now - s.window_start;
    const double full_span = now - s.first_seen;
    if (full_span > 0.0) {
      const double recent_fraction = span / full_span;
      s.window_start_bytes =
          cumulative_bytes -
          static_cast<Bytes>(static_cast<double>(cumulative_bytes) * recent_fraction);
    }
  }

  const Seconds elapsed = now - s.window_start;
  if (elapsed < config_.window) return;  // not enough evidence yet
  if (cumulative_bytes < config_.min_bytes) return;
  const BitsPerSecond rate =
      static_cast<double>(cumulative_bytes - s.window_start_bytes) * 8.0 / elapsed;
  if (rate < config_.min_rate) {
    // Restart the window: the flow must re-earn the sustained-rate bar.
    s.window_start = now;
    s.window_start_bytes = cumulative_bytes;
    return;
  }
  s.alpha = true;
  ++promoted_;
  if (on_promote_) on_promote_(key, rate);
}

void AlphaDetector::forget(FlowKey key) { flows_.erase(key); }

bool AlphaDetector::is_alpha(FlowKey key) const {
  const auto it = flows_.find(key);
  return it != flows_.end() && it->second.alpha;
}

}  // namespace gridvc::vc
