#include "vc/idc.hpp"

#include <cmath>

#include "common/error.hpp"

namespace gridvc::vc {

Idc::Idc(sim::Simulator& sim, const net::Topology& topo, IdcConfig config, LinkPolicy policy)
    : sim_(sim),
      topo_(topo),
      config_(config),
      calendar_(topo, config.reservable_fraction),
      user_policy_(std::move(policy)),
      paths_(topo, calendar_, [this](net::LinkId l) {
        if (failed_links_.contains(l)) return false;
        return !user_policy_ || user_policy_(l);
      }) {
  GRIDVC_REQUIRE(config_.batch_interval > 0.0, "batch interval must be positive");
  GRIDVC_REQUIRE(config_.immediate_setup_delay >= 0.0, "negative signaling delay");

  obs::MetricsRegistry& reg = sim_.obs().registry();
  id_requests_ = reg.counter("gridvc_vc_requests", "createReservation calls received");
  id_accepted_ = reg.counter("gridvc_vc_accepted", "Reservations admitted to the calendar");
  id_rejected_no_bandwidth_ = reg.counter(
      "gridvc_vc_rejected_no_bandwidth", "First rejections: no path with enough headroom");
  id_rejected_no_route_ = reg.counter("gridvc_vc_rejected_no_route",
                                      "First rejections: endpoints not connected");
  id_rejected_invalid_ = reg.counter("gridvc_vc_rejected_invalid",
                                     "First rejections: malformed window or rate");
  id_rejected_retries_ = reg.counter(
      "gridvc_vc_rejected_retries",
      "Re-rejections of requests marked is_retry (not independent blocks)");
  id_released_ = reg.counter("gridvc_vc_released", "Circuits torn down after activation");
  id_cancelled_ = reg.counter("gridvc_vc_cancelled", "Reservations cancelled before activation");
  id_repathed_ = reg.counter("gridvc_vc_repathed",
                             "Circuits re-homed around a failed link");
  id_active_gauge_ = reg.gauge("gridvc_vc_active_circuits",
                               "Circuits whose guarantee is currently in force");
  id_bookings_gauge_ = reg.gauge("gridvc_vc_calendar_bookings",
                                 "Live bookings in the bandwidth calendar");
  id_setup_delay_hist_ = reg.histogram(
      "gridvc_vc_setup_delay_seconds", {0.05, 0.1, 1, 10, 30, 60, 120, 300},
      "Observed activation - requested start (the paper's VC setup delay)");
}

void Idc::count_rejection(const ReservationRequest& request, RejectReason reason) {
  obs::MetricsRegistry& reg = sim_.obs().registry();
  if (request.is_retry) {
    // A retried demand was already counted when it first blocked; folding
    // the retry into the per-reason counters would double-count it.
    ++stats_.rejected_retries;
    reg.add(id_rejected_retries_);
    return;
  }
  switch (reason) {
    case RejectReason::kInsufficientBandwidth:
      ++stats_.rejected_no_bandwidth;
      reg.add(id_rejected_no_bandwidth_);
      break;
    case RejectReason::kNoRoute:
      ++stats_.rejected_no_route;
      reg.add(id_rejected_no_route_);
      break;
    case RejectReason::kInvalidRequest:
      ++stats_.rejected_invalid;
      reg.add(id_rejected_invalid_);
      break;
  }
}

void Idc::sync_calendar_gauge() {
  sim_.obs().registry().set(id_bookings_gauge_,
                            static_cast<double>(calendar_.active_bookings()));
}

Seconds Idc::predicted_activation(Seconds submit_time, Seconds start_time) const {
  const Seconds want = std::max(submit_time, start_time);
  switch (config_.mode) {
    case SignalingMode::kImmediate:
      return want + config_.immediate_setup_delay;
    case SignalingMode::kBatchedAutomatic: {
      // A request must be received a full interval before the batch
      // boundary that provisions it, so immediate-use requests wait at
      // least one interval: the "minimum 1-min VC setup delay" of §IV.
      const Seconds earliest = submit_time + config_.batch_interval;
      if (start_time >= earliest) {
        // Advance reservation: the IDC provisions just before startTime.
        return start_time;
      }
      const double k = std::ceil(earliest / config_.batch_interval);
      return k * config_.batch_interval;
    }
  }
  return want;  // unreachable
}

Idc::SubmitResult Idc::create_reservation(const ReservationRequest& request,
                                          CircuitFn on_active, CircuitFn on_release) {
  // Ids are allocated per *request*, so rejected requests and the circuit
  // they would have become share one id in the trace stream.
  const std::uint64_t id = next_id_++;
  obs::Observability& obs = sim_.obs();
  obs.registry().add(id_requests_);
  obs.emit({sim_.now(), obs::TraceEventType::kVcRequested, id,
            request.is_retry ? 1u : 0u, request.bandwidth,
            request.end_time - request.start_time});

  const auto reject = [&](RejectReason reason) {
    SubmitResult result;
    result.reason = reason;
    count_rejection(request, reason);
    obs.emit({sim_.now(), obs::TraceEventType::kVcRejected, id,
              static_cast<std::uint64_t>(reason), 0.0, 0.0});
    return result;
  };

  if (request.bandwidth <= 0.0 || request.end_time <= request.start_time ||
      request.src >= topo_.node_count() || request.dst >= topo_.node_count() ||
      request.src == request.dst) {
    return reject(RejectReason::kInvalidRequest);
  }

  const Seconds activation = predicted_activation(sim_.now(), request.start_time);
  if (activation >= request.end_time) {
    // The circuit would expire before it could be set up.
    return reject(RejectReason::kInvalidRequest);
  }

  const auto path = paths_.compute(request.src, request.dst, request.bandwidth,
                                   activation, request.end_time);
  if (!path) {
    // Distinguish "no connectivity at all" from "connected but full".
    const bool any_route = net::shortest_path(topo_, request.src, request.dst).has_value();
    return reject(any_route ? RejectReason::kInsufficientBandwidth
                            : RejectReason::kNoRoute);
  }

  SubmitResult result;
  Entry entry;
  entry.circuit.id = id;
  entry.circuit.request = request;
  entry.circuit.path = *path;
  entry.circuit.state = CircuitState::kScheduled;
  entry.booking = calendar_.book(*path, activation, request.end_time, request.bandwidth);
  entry.on_active = std::move(on_active);
  entry.on_release = std::move(on_release);
  entry.circuit.provision_started = sim_.now();
  entry.activate_event = sim_.schedule_at(activation, [this, id] { activate(id); });
  entries_.emplace(id, std::move(entry));
  ++stats_.accepted;
  obs.registry().add(id_accepted_);
  sync_calendar_gauge();
  obs.emit({sim_.now(), obs::TraceEventType::kVcGranted, id, 0,
            activation - request.start_time, request.bandwidth});
  result.circuit_id = id;
  return result;
}

Idc::SubmitResult Idc::request_immediate(net::NodeId src, net::NodeId dst,
                                         BitsPerSecond bandwidth, Seconds duration,
                                         CircuitFn on_active, CircuitFn on_release) {
  GRIDVC_REQUIRE(duration > 0.0, "circuit duration must be positive");
  const Seconds activation = predicted_activation(sim_.now(), sim_.now());
  ReservationRequest request;
  request.src = src;
  request.dst = dst;
  request.bandwidth = bandwidth;
  request.start_time = sim_.now();
  request.end_time = activation + duration;
  request.description = "immediate";
  return create_reservation(request, std::move(on_active), std::move(on_release));
}

void Idc::activate(std::uint64_t id) {
  auto& entry = entries_.at(id);
  entry.circuit.state = CircuitState::kActive;
  entry.circuit.active_at = sim_.now();
  entry.release_event =
      sim_.schedule_at(entry.circuit.request.end_time, [this, id] { release(id); });
  ++active_circuits_;
  obs::Observability& obs = sim_.obs();
  obs.registry().observe(id_setup_delay_hist_, entry.circuit.setup_delay());
  obs.registry().set(id_active_gauge_, static_cast<double>(active_circuits_));
  obs.emit({sim_.now(), obs::TraceEventType::kVcActivated, id, 0,
            entry.circuit.setup_delay(), entry.circuit.request.bandwidth});
  if (entry.on_active) entry.on_active(entry.circuit);
}

void Idc::release(std::uint64_t id) {
  auto& entry = entries_.at(id);
  entry.circuit.state = CircuitState::kReleased;
  entry.circuit.released_at = sim_.now();
  ++stats_.released;
  // The calendar booking ends at end_time on its own, but release the
  // booking record so active_bookings() reflects live circuits only.
  calendar_.release(entry.booking);
  entry.booking = 0;
  GRIDVC_REQUIRE(active_circuits_ > 0, "active circuit underflow");
  --active_circuits_;
  obs::Observability& obs = sim_.obs();
  obs.registry().add(id_released_);
  obs.registry().set(id_active_gauge_, static_cast<double>(active_circuits_));
  sync_calendar_gauge();
  obs.emit({sim_.now(), obs::TraceEventType::kVcReleased, id, 0,
            entry.circuit.released_at - entry.circuit.active_at,
            entry.circuit.request.bandwidth});
  if (entry.on_release) entry.on_release(entry.circuit);
}

void Idc::cancel(std::uint64_t circuit_id) {
  const auto it = entries_.find(circuit_id);
  GRIDVC_REQUIRE(it != entries_.end(), "cancel of unknown circuit");
  Entry& entry = it->second;
  GRIDVC_REQUIRE(entry.circuit.state == CircuitState::kScheduled,
                 "cancel after activation; use release_now");
  entry.activate_event.cancel();
  calendar_.release(entry.booking);
  entry.circuit.state = CircuitState::kCancelled;
  ++stats_.cancelled;
  sim_.obs().registry().add(id_cancelled_);
  sync_calendar_gauge();
  sim_.obs().emit({sim_.now(), obs::TraceEventType::kVcCancelled, circuit_id, 0, 0.0, 0.0});
}

void Idc::release_now(std::uint64_t circuit_id) {
  const auto it = entries_.find(circuit_id);
  GRIDVC_REQUIRE(it != entries_.end(), "release_now of unknown circuit");
  Entry& entry = it->second;
  GRIDVC_REQUIRE(entry.circuit.state == CircuitState::kActive,
                 "release_now of a circuit that is not active");
  entry.release_event.cancel();
  entry.circuit.state = CircuitState::kReleased;
  entry.circuit.released_at = sim_.now();
  ++stats_.released;
  // Releasing the whole booking frees the window tail for other circuits;
  // freeing the (already elapsed) head has no effect on future admission.
  calendar_.release(entry.booking);
  entry.booking = 0;
  GRIDVC_REQUIRE(active_circuits_ > 0, "active circuit underflow");
  --active_circuits_;
  obs::Observability& obs = sim_.obs();
  obs.registry().add(id_released_);
  obs.registry().set(id_active_gauge_, static_cast<double>(active_circuits_));
  sync_calendar_gauge();
  obs.emit({sim_.now(), obs::TraceEventType::kVcReleased, circuit_id, 0,
            entry.circuit.released_at - entry.circuit.active_at,
            entry.circuit.request.bandwidth});
  if (entry.on_release) entry.on_release(entry.circuit);
}

bool Idc::modify_reservation(std::uint64_t circuit_id, BitsPerSecond new_bandwidth,
                             Seconds new_end_time) {
  const auto it = entries_.find(circuit_id);
  GRIDVC_REQUIRE(it != entries_.end(), "modify of unknown circuit");
  Entry& entry = it->second;
  GRIDVC_REQUIRE(entry.circuit.state == CircuitState::kScheduled,
                 "only scheduled reservations can be modified");
  GRIDVC_REQUIRE(new_bandwidth > 0.0, "modified bandwidth must be positive");
  const Seconds activation =
      predicted_activation(entry.circuit.provision_started, entry.circuit.request.start_time);
  if (new_end_time <= activation) return false;

  // Re-admit with the old booking out of the way so shrinking always
  // succeeds and growing is checked against true residual capacity.
  calendar_.release(entry.booking);
  if (!calendar_.fits(entry.circuit.path, activation, new_end_time, new_bandwidth)) {
    entry.booking = calendar_.book(entry.circuit.path, activation,
                                   entry.circuit.request.end_time,
                                   entry.circuit.request.bandwidth);
    return false;
  }
  entry.booking =
      calendar_.book(entry.circuit.path, activation, new_end_time, new_bandwidth);
  entry.circuit.request.bandwidth = new_bandwidth;
  entry.circuit.request.end_time = new_end_time;
  sync_calendar_gauge();
  return true;
}

std::size_t Idc::handle_link_failure(net::LinkId failed_link) {
  GRIDVC_REQUIRE(failed_link < topo_.link_count(), "link id out of range");
  failed_links_.insert(failed_link);

  std::size_t repathed = 0;
  for (auto& [id, entry] : entries_) {
    Circuit& c = entry.circuit;
    if (c.state != CircuitState::kScheduled && c.state != CircuitState::kActive) continue;
    bool affected = false;
    for (net::LinkId l : c.path) {
      if (l == failed_link) affected = true;
    }
    if (!affected) continue;

    // Free the old booking first so the replacement can reuse capacity on
    // the surviving portion of the path.
    calendar_.release(entry.booking);
    entry.booking = 0;
    const Seconds start = c.state == CircuitState::kActive
                              ? sim_.now()
                              : predicted_activation(sim_.now(), c.request.start_time);
    const auto replacement = paths_.compute(c.request.src, c.request.dst,
                                            c.request.bandwidth, start,
                                            c.request.end_time);
    if (replacement) {
      c.path = *replacement;
      entry.booking =
          calendar_.book(*replacement, start, c.request.end_time, c.request.bandwidth);
      ++repathed;
      sim_.obs().registry().add(id_repathed_);
      continue;
    }
    // No alternative: tear the circuit down.
    entry.activate_event.cancel();
    entry.release_event.cancel();
    obs::Observability& obs = sim_.obs();
    if (c.state == CircuitState::kActive) {
      c.state = CircuitState::kReleased;
      c.released_at = sim_.now();
      ++stats_.released;
      GRIDVC_REQUIRE(active_circuits_ > 0, "active circuit underflow");
      --active_circuits_;
      obs.registry().add(id_released_);
      obs.registry().set(id_active_gauge_, static_cast<double>(active_circuits_));
      obs.emit({sim_.now(), obs::TraceEventType::kVcReleased, id, 0,
                c.released_at - c.active_at, c.request.bandwidth});
      if (entry.on_release) entry.on_release(c);
    } else {
      c.state = CircuitState::kCancelled;
      ++stats_.cancelled;
      obs.registry().add(id_cancelled_);
      obs.emit({sim_.now(), obs::TraceEventType::kVcCancelled, id, 0, 0.0, 0.0});
    }
  }
  sync_calendar_gauge();
  return repathed;
}

void Idc::restore_link(net::LinkId link) { failed_links_.erase(link); }

const Circuit& Idc::circuit(std::uint64_t circuit_id) const {
  const auto it = entries_.find(circuit_id);
  GRIDVC_REQUIRE(it != entries_.end(), "lookup of unknown circuit");
  return it->second.circuit;
}

}  // namespace gridvc::vc
