#include "vc/idc.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "obs/profiler.hpp"

namespace gridvc::vc {

namespace {

// A lifecycle callback may tear down / retire the very circuit it is
// invoked for, which destroys the std::function mid-execution and
// invalidates the entry's Circuit. Copy both to locals first.
void invoke_callback(const Idc::CircuitFn& fn, const Circuit& circuit) {
  if (!fn) return;
  const Idc::CircuitFn fn_copy = fn;
  const Circuit snapshot = circuit;
  fn_copy(snapshot);
}

}  // namespace

Idc::Idc(sim::Simulator& sim, const net::Topology& topo, IdcConfig config, LinkPolicy policy)
    : sim_(sim),
      topo_(topo),
      config_(config),
      calendar_(topo, config.reservable_fraction),
      user_policy_(std::move(policy)),
      paths_(topo, calendar_, [this](net::LinkId l) { return link_usable(l); }),
      breaker_(config.breaker) {
  GRIDVC_REQUIRE(config_.terminal_capacity >= 1, "terminal capacity must be >= 1");
  GRIDVC_REQUIRE(config_.batch_interval > 0.0, "batch interval must be positive");
  GRIDVC_REQUIRE(config_.immediate_setup_delay >= 0.0, "negative signaling delay");
  GRIDVC_REQUIRE(config_.resignal_backoff > 0.0, "resignal backoff must be positive");
  GRIDVC_REQUIRE(config_.resignal_backoff_multiplier >= 1.0,
                 "resignal backoff multiplier must be >= 1");
  GRIDVC_REQUIRE(config_.max_resignal_attempts >= 1,
                 "need at least one resignal attempt");

  obs::MetricsRegistry& reg = sim_.obs().registry();
  id_requests_ = reg.counter("gridvc_vc_requests", "createReservation calls received");
  id_accepted_ = reg.counter("gridvc_vc_accepted", "Reservations admitted to the calendar");
  id_rejected_no_bandwidth_ = reg.counter(
      "gridvc_vc_rejected_no_bandwidth", "First rejections: no path with enough headroom");
  id_rejected_no_route_ = reg.counter("gridvc_vc_rejected_no_route",
                                      "First rejections: endpoints not connected");
  id_rejected_invalid_ = reg.counter("gridvc_vc_rejected_invalid",
                                     "First rejections: malformed window or rate");
  id_rejected_retries_ = reg.counter(
      "gridvc_vc_rejected_retries",
      "Re-rejections of requests marked is_retry (not independent blocks)");
  id_rejected_outage_ = reg.counter(
      "gridvc_vc_rejected_outage",
      "Fail-fast rejections while the control plane was unreachable");
  id_outages_ = reg.counter("gridvc_vc_outages", "Control-plane outage windows entered");
  id_released_ = reg.counter("gridvc_vc_released", "Circuits torn down after activation");
  id_cancelled_ = reg.counter("gridvc_vc_cancelled", "Reservations cancelled before activation");
  id_repathed_ = reg.counter("gridvc_vc_repathed",
                             "Circuits re-homed around a failed link");
  id_shaped_ = reg.counter("gridvc_vc_shaped",
                           "Malleable reservations admitted via profile shaping");
  id_defragmented_ = reg.counter(
      "gridvc_vc_defragmented", "Shaped admissions that reshaped existing bookings");
  id_rerouted_ = reg.counter("gridvc_vc_rerouted",
                             "Shaped admissions placed off the primary route");
  id_failed_ = reg.counter("gridvc_vc_failed",
                           "Active circuits that lost a link on their path");
  id_resignaled_ = reg.counter("gridvc_vc_resignaled",
                               "Failed circuits successfully re-signaled");
  id_active_gauge_ = reg.gauge("gridvc_vc_active_circuits",
                               "Circuits whose guarantee is currently in force");
  id_bookings_gauge_ = reg.gauge("gridvc_vc_calendar_bookings",
                                 "Live bookings in the bandwidth calendar");
  id_setup_delay_hist_ = reg.log_histogram(
      "gridvc_vc_setup_delay_seconds",
      "Observed activation - requested start (the paper's VC setup delay)");
  id_resignal_delay_hist_ = reg.log_histogram(
      "gridvc_vc_resignal_delay_seconds",
      "Failure -> re-activation for circuits re-homed after a link failure");
}

bool Idc::link_usable(net::LinkId link) const {
  if (failed_links_.contains(link)) return false;
  return !user_policy_ || user_policy_(link);
}

Seconds Idc::booked_end(const Circuit& c) {
  return c.profile.empty() ? c.request.end_time : c.profile.back().end;
}

void Idc::count_rejection(const ReservationRequest& request, RejectReason reason) {
  obs::MetricsRegistry& reg = sim_.obs().registry();
  if (reason == RejectReason::kControlPlaneDown) {
    // Not an admission verdict (retried or not): the IDC never evaluated
    // the demand, so it stays out of the blocking-probability counters.
    ++stats_.rejected_outage;
    reg.add(id_rejected_outage_);
    return;
  }
  if (request.is_retry) {
    // A retried demand was already counted when it first blocked; folding
    // the retry into the per-reason counters would double-count it.
    ++stats_.rejected_retries;
    reg.add(id_rejected_retries_);
    return;
  }
  switch (reason) {
    case RejectReason::kInsufficientBandwidth:
      ++stats_.rejected_no_bandwidth;
      reg.add(id_rejected_no_bandwidth_);
      break;
    case RejectReason::kNoRoute:
      ++stats_.rejected_no_route;
      reg.add(id_rejected_no_route_);
      break;
    case RejectReason::kInvalidRequest:
      ++stats_.rejected_invalid;
      reg.add(id_rejected_invalid_);
      break;
    case RejectReason::kControlPlaneDown:
      break;  // handled above
  }
}

void Idc::sync_calendar_gauge() {
  sim_.obs().registry().set(id_bookings_gauge_,
                            static_cast<double>(calendar_.active_bookings()));
}

Seconds Idc::predicted_activation(Seconds submit_time, Seconds start_time) const {
  const Seconds want = std::max(submit_time, start_time);
  switch (config_.mode) {
    case SignalingMode::kImmediate:
      return want + config_.immediate_setup_delay;
    case SignalingMode::kBatchedAutomatic: {
      // A request must be received a full interval before the batch
      // boundary that provisions it, so immediate-use requests wait at
      // least one interval: the "minimum 1-min VC setup delay" of §IV.
      const Seconds earliest = submit_time + config_.batch_interval;
      if (start_time >= earliest) {
        // Advance reservation: the IDC provisions just before startTime.
        return start_time;
      }
      const double k = std::ceil(earliest / config_.batch_interval);
      return k * config_.batch_interval;
    }
  }
  return want;  // unreachable
}

Idc::SubmitResult Idc::create_reservation(const ReservationRequest& request,
                                          CircuitFn on_active, CircuitFn on_release,
                                          CircuitFn on_failure) {
  GRIDVC_PROF_ZONE("vc.idc.admit");
  // Ids are allocated per *request*, so rejected requests and the circuit
  // they would have become share one id in the trace stream.
  const std::uint64_t id = next_id_++;
  obs::Observability& obs = sim_.obs();
  obs.registry().add(id_requests_);
  obs.emit({sim_.now(), obs::TraceEventType::kVcRequested, id,
            request.is_retry ? 1u : 0u, request.bandwidth,
            request.end_time - request.start_time});

  const auto reject = [&](RejectReason reason) {
    SubmitResult result;
    result.reason = reason;
    count_rejection(request, reason);
    obs.emit({sim_.now(), obs::TraceEventType::kVcRejected, id,
              static_cast<std::uint64_t>(reason), 0.0, 0.0});
    return result;
  };

  if (in_outage_) {
    // Fail fast: the control plane is unreachable, so no path computation
    // or admission happens. Callers see the distinct reason and can back
    // off (or trip their own breaker) instead of interpreting the outage
    // as a capacity signal.
    return reject(RejectReason::kControlPlaneDown);
  }

  if (request.bandwidth <= 0.0 || request.end_time <= request.start_time ||
      request.src >= topo_.node_count() || request.dst >= topo_.node_count() ||
      request.src == request.dst) {
    return reject(RejectReason::kInvalidRequest);
  }
  if (request.malleable && request.max_bandwidth > 0.0 &&
      request.max_bandwidth < request.bandwidth) {
    // A step cap below the preferred rate could not carry even the flat
    // shape the request nominally asks for.
    return reject(RejectReason::kInvalidRequest);
  }

  const Seconds activation = predicted_activation(sim_.now(), request.start_time);
  if (activation >= request.end_time) {
    // The circuit would expire before it could be set up.
    return reject(RejectReason::kInvalidRequest);
  }

  auto path = paths_.compute(request.src, request.dst, request.bandwidth,
                             activation, request.end_time);
  std::vector<RateSegment> profile;  // stays empty for flat admissions
  bool defragmented = false;
  bool rerouted = false;
  if (!path && request.malleable) {
    // Flat admission failed: shape the volume into the primary route's
    // headroom, defragment it when that fails, and only then reroute.
    // The primary shaping route is the plain policy-filtered shortest
    // path — a link with no *flat* headroom over the whole window can
    // still carry the volume in its slack slices.
    const net::LinkFilter usable = [this](net::LinkId l) { return link_usable(l); };
    const auto try_shape =
        [&](const net::Path& p) -> std::optional<std::vector<RateSegment>> {
      auto shaped = shape_request(p, request, activation);
      if (!shaped) {
        shaped = shape_with_defrag(p, request, activation);
        if (shaped) defragmented = true;
      }
      return shaped;
    };
    const auto primary = net::shortest_path(topo_, request.src, request.dst, usable);
    if (primary) {
      auto shaped = try_shape(*primary);
      if (shaped) {
        path = primary;
      } else {
        // Reroute-on-rejection: ask path computation for a detour with at
        // least half the preferred rate of flat headroom — a deliberately
        // weaker probe than the admission that just failed — and shape
        // into it before giving up.
        const auto detour = paths_.compute(request.src, request.dst,
                                           request.bandwidth * 0.5, activation,
                                           request.end_time);
        if (detour && *detour != *primary) {
          shaped = try_shape(*detour);
          if (shaped) {
            path = detour;
            rerouted = true;
          }
        }
      }
      if (shaped) profile = std::move(*shaped);
    }
  }
  if (!path) {
    // Distinguish "no connectivity at all" from "connected but full".
    const bool any_route = net::shortest_path(topo_, request.src, request.dst).has_value();
    return reject(any_route ? RejectReason::kInsufficientBandwidth
                            : RejectReason::kNoRoute);
  }

  SubmitResult result;
  Entry entry;
  entry.circuit.id = id;
  entry.circuit.request = request;
  entry.circuit.path = *path;
  entry.circuit.state = CircuitState::kScheduled;
  entry.circuit.profile = profile;
  entry.activation = activation;
  if (profile.empty()) {
    entry.booking = calendar_.book(*path, activation, request.end_time, request.bandwidth);
  } else {
    entry.booking = calendar_.book_profile(*path, profile);
    ++stats_.shaped;
    obs.registry().add(id_shaped_);
    if (defragmented) {
      ++stats_.defragmented;
      obs.registry().add(id_defragmented_);
    }
    if (rerouted) {
      ++stats_.rerouted;
      obs.registry().add(id_rerouted_);
    }
  }
  entry.on_active = std::move(on_active);
  entry.on_release = std::move(on_release);
  entry.on_failure = std::move(on_failure);
  entry.circuit.provision_started = sim_.now();
  const Seconds activate_at = profile.empty() ? activation : profile.front().start;
  entry.activate_event = sim_.schedule_at(activate_at, [this, id] { activate(id); });
  entries_.emplace(id, std::move(entry));
  ++stats_.accepted;
  journal_reservation(id, request, activation, profile);
  obs.registry().add(id_accepted_);
  sync_calendar_gauge();
  // aux bit 0: shaped; bit 1: needed defrag; bit 2: placed off-route.
  const std::uint64_t aux = (profile.empty() ? 0u : 1u) | (defragmented ? 2u : 0u) |
                            (rerouted ? 4u : 0u);
  obs.emit({sim_.now(), obs::TraceEventType::kVcGranted, id, aux,
            activation - request.start_time, request.bandwidth});
  result.circuit_id = id;
  return result;
}

Idc::SubmitResult Idc::request_immediate(net::NodeId src, net::NodeId dst,
                                         BitsPerSecond bandwidth, Seconds duration,
                                         CircuitFn on_active, CircuitFn on_release,
                                         CircuitFn on_failure) {
  GRIDVC_REQUIRE(duration > 0.0, "circuit duration must be positive");
  const Seconds activation = predicted_activation(sim_.now(), sim_.now());
  ReservationRequest request;
  request.src = src;
  request.dst = dst;
  request.bandwidth = bandwidth;
  request.start_time = sim_.now();
  request.end_time = activation + duration;
  request.description = "immediate";
  return create_reservation(request, std::move(on_active), std::move(on_release),
                            std::move(on_failure));
}

void Idc::activate(std::uint64_t id) {
  auto& entry = entries_.at(id);
  entry.circuit.state = CircuitState::kActive;
  entry.circuit.active_at = sim_.now();
  entry.release_event =
      sim_.schedule_at(booked_end(entry.circuit), [this, id] { release(id); });
  ++active_circuits_;
  obs::Observability& obs = sim_.obs();
  obs.registry().observe(id_setup_delay_hist_, entry.circuit.setup_delay());
  obs.registry().set(id_active_gauge_, static_cast<double>(active_circuits_));
  obs.emit({sim_.now(), obs::TraceEventType::kVcActivated, id, 0,
            entry.circuit.setup_delay(), entry.circuit.request.bandwidth});
  invoke_callback(entry.on_active, entry.circuit);
}

void Idc::release(std::uint64_t id) {
  auto& entry = entries_.at(id);
  entry.circuit.state = CircuitState::kReleased;
  entry.circuit.released_at = sim_.now();
  ++stats_.released;
  // The calendar booking ends at end_time on its own, but release the
  // booking record so active_bookings() reflects live circuits only.
  calendar_.release(entry.booking);
  entry.booking = 0;
  GRIDVC_REQUIRE(active_circuits_ > 0, "active circuit underflow");
  --active_circuits_;
  obs::Observability& obs = sim_.obs();
  obs.registry().add(id_released_);
  obs.registry().set(id_active_gauge_, static_cast<double>(active_circuits_));
  sync_calendar_gauge();
  obs.emit({sim_.now(), obs::TraceEventType::kVcReleased, id, 0,
            entry.circuit.released_at - entry.circuit.active_at,
            entry.circuit.request.bandwidth});
  invoke_callback(entry.on_release, entry.circuit);
  retire(id);
}

void Idc::cancel(std::uint64_t circuit_id) {
  const auto it = entries_.find(circuit_id);
  if (it == entries_.end()) {
    // Terminal circuits are past cancellation; truly unknown ids are a
    // caller bug.
    GRIDVC_REQUIRE(terminal_.contains(circuit_id), "cancel of unknown circuit");
    GRIDVC_REQUIRE(false, "cancel after activation; use release_now");
  }
  Entry& entry = it->second;
  GRIDVC_REQUIRE(entry.circuit.state == CircuitState::kScheduled,
                 "cancel after activation; use release_now");
  entry.activate_event.cancel();
  calendar_.release(entry.booking);
  entry.circuit.state = CircuitState::kCancelled;
  ++stats_.cancelled;
  sim_.obs().registry().add(id_cancelled_);
  sync_calendar_gauge();
  sim_.obs().emit({sim_.now(), obs::TraceEventType::kVcCancelled, circuit_id, 0, 0.0, 0.0});
  retire(circuit_id);
}

void Idc::release_now(std::uint64_t circuit_id) {
  const auto it = entries_.find(circuit_id);
  if (it == entries_.end()) {
    // Already terminal: the caller's teardown raced the circuit's own
    // lifecycle (end-time release, failure) — nothing left to free.
    GRIDVC_REQUIRE(terminal_.contains(circuit_id), "release_now of unknown circuit");
    return;
  }
  Entry& entry = it->second;
  if (entry.circuit.state == CircuitState::kFailed) {
    // The data plane is already gone and the booking freed; drop any
    // pending re-signal and retire the record.
    retire(circuit_id);
    return;
  }
  GRIDVC_REQUIRE(entry.circuit.state == CircuitState::kActive,
                 "release_now of a circuit that is not active");
  entry.release_event.cancel();
  entry.circuit.state = CircuitState::kReleased;
  entry.circuit.released_at = sim_.now();
  ++stats_.released;
  // Releasing the whole booking frees the window tail for other circuits;
  // freeing the (already elapsed) head has no effect on future admission.
  calendar_.release(entry.booking);
  entry.booking = 0;
  GRIDVC_REQUIRE(active_circuits_ > 0, "active circuit underflow");
  --active_circuits_;
  obs::Observability& obs = sim_.obs();
  obs.registry().add(id_released_);
  obs.registry().set(id_active_gauge_, static_cast<double>(active_circuits_));
  sync_calendar_gauge();
  obs.emit({sim_.now(), obs::TraceEventType::kVcReleased, circuit_id, 0,
            entry.circuit.released_at - entry.circuit.active_at,
            entry.circuit.request.bandwidth});
  invoke_callback(entry.on_release, entry.circuit);
  retire(circuit_id);
}

bool Idc::modify_reservation(std::uint64_t circuit_id, BitsPerSecond new_bandwidth,
                             Seconds new_end_time) {
  const auto it = entries_.find(circuit_id);
  GRIDVC_REQUIRE(it != entries_.end(), "modify of unknown circuit");
  Entry& entry = it->second;
  GRIDVC_REQUIRE(entry.circuit.state == CircuitState::kScheduled,
                 "only scheduled reservations can be modified");
  GRIDVC_REQUIRE(new_bandwidth > 0.0, "modified bandwidth must be positive");
  const Seconds activation = entry.activation;
  if (new_end_time <= activation) return false;

  // Re-admit with the old booking out of the way so shrinking always
  // succeeds and growing is checked against true residual capacity.
  calendar_.release(entry.booking);
  const auto reinstate = [&] {
    if (entry.circuit.profile.empty()) {
      entry.booking = calendar_.book(entry.circuit.path, activation,
                                     entry.circuit.request.end_time,
                                     entry.circuit.request.bandwidth);
    } else {
      entry.booking = calendar_.book_profile(entry.circuit.path, entry.circuit.profile);
    }
  };
  const Seconds old_activate_at = entry.circuit.profile.empty()
                                      ? activation
                                      : entry.circuit.profile.front().start;
  std::vector<RateSegment> new_profile;  // empty = the change fits flat
  if (calendar_.fits(entry.circuit.path, activation, new_end_time, new_bandwidth)) {
    entry.booking =
        calendar_.book(entry.circuit.path, activation, new_end_time, new_bandwidth);
  } else if (entry.circuit.request.malleable &&
             (entry.circuit.request.max_bandwidth <= 0.0 ||
              entry.circuit.request.max_bandwidth >= new_bandwidth)) {
    ReservationRequest changed = entry.circuit.request;
    changed.bandwidth = new_bandwidth;
    changed.end_time = new_end_time;
    const auto shaped = shape_request(entry.circuit.path, changed, activation);
    if (!shaped) {
      reinstate();
      return false;
    }
    new_profile = *shaped;
    entry.booking = calendar_.book_profile(entry.circuit.path, new_profile);
  } else {
    reinstate();
    return false;
  }
  entry.circuit.request.bandwidth = new_bandwidth;
  entry.circuit.request.end_time = new_end_time;
  entry.circuit.profile = std::move(new_profile);
  const Seconds new_activate_at = entry.circuit.profile.empty()
                                      ? activation
                                      : entry.circuit.profile.front().start;
  if (new_activate_at != old_activate_at) {
    entry.activate_event.cancel();
    const std::uint64_t id = circuit_id;
    entry.activate_event = sim_.schedule_at(new_activate_at, [this, id] { activate(id); });
  }
  journal_reservation(circuit_id, entry.circuit.request, activation, entry.circuit.profile);
  sync_calendar_gauge();
  return true;
}

std::size_t Idc::handle_link_failure(net::LinkId failed_link) {
  GRIDVC_REQUIRE(failed_link < topo_.link_count(), "link id out of range");
  failed_links_.insert(failed_link);

  // Collect first, then process by lookup: failure handling retires
  // entries and fires callbacks that may mutate entries_ re-entrantly
  // (new reservations, release_now on other circuits), which would
  // invalidate an in-place iteration.
  std::vector<std::uint64_t> affected;
  for (const auto& [id, entry] : entries_) {
    const Circuit& c = entry.circuit;
    if (c.state != CircuitState::kScheduled && c.state != CircuitState::kActive) continue;
    if (std::find(c.path.begin(), c.path.end(), failed_link) != c.path.end()) {
      affected.push_back(id);
    }
  }

  std::size_t repathed = 0;
  for (const std::uint64_t id : affected) {
    const auto it = entries_.find(id);
    if (it == entries_.end()) continue;  // a callback tore it down meanwhile
    Entry& entry = it->second;
    Circuit& c = entry.circuit;

    if (c.state == CircuitState::kActive) {
      fail_active(id, failed_link);
      continue;
    }
    if (c.state != CircuitState::kScheduled) continue;

    // Scheduled: re-admit around the failed link with the old booking out
    // of the way so the replacement can reuse the surviving portion.
    calendar_.release(entry.booking);
    entry.booking = 0;
    if (!c.profile.empty()) {
      // Shaped circuit: keep the admitted profile, just re-home it on a
      // surviving route that still fits every segment.
      const auto alt = net::shortest_path(topo_, c.request.src, c.request.dst,
                                          [this](net::LinkId l) { return link_usable(l); });
      if (alt && calendar_.fits_profile(*alt, c.profile)) {
        c.path = *alt;
        entry.booking = calendar_.book_profile(*alt, c.profile);
        ++repathed;
        sim_.obs().registry().add(id_repathed_);
        continue;
      }
    } else {
      const Seconds start = predicted_activation(sim_.now(), c.request.start_time);
      const auto replacement = paths_.compute(c.request.src, c.request.dst,
                                              c.request.bandwidth, start,
                                              c.request.end_time);
      if (replacement) {
        c.path = *replacement;
        entry.booking =
            calendar_.book(*replacement, start, c.request.end_time, c.request.bandwidth);
        ++repathed;
        sim_.obs().registry().add(id_repathed_);
        continue;
      }
    }
    // No alternative: the reservation cannot be honored.
    entry.activate_event.cancel();
    c.state = CircuitState::kCancelled;
    ++stats_.cancelled;
    sim_.obs().registry().add(id_cancelled_);
    sim_.obs().emit({sim_.now(), obs::TraceEventType::kVcCancelled, id, 0, 0.0, 0.0});
    retire(id);
  }
  sync_calendar_gauge();
  return repathed;
}

void Idc::fail_active(std::uint64_t id, net::LinkId failed_link) {
  Entry& entry = entries_.at(id);
  Circuit& c = entry.circuit;
  GRIDVC_REQUIRE(c.state == CircuitState::kActive, "fail_active on non-active circuit");

  // The data plane is gone now: free the booking, stop the scheduled
  // end-time release, and surface the loss before any re-signal attempt.
  calendar_.release(entry.booking);
  entry.booking = 0;
  entry.release_event.cancel();
  c.state = CircuitState::kFailed;
  c.failed_at = sim_.now();
  ++stats_.failed;
  GRIDVC_REQUIRE(active_circuits_ > 0, "active circuit underflow");
  --active_circuits_;

  obs::Observability& obs = sim_.obs();
  obs.registry().add(id_failed_);
  obs.registry().set(id_active_gauge_, static_cast<double>(active_circuits_));
  obs.emit({sim_.now(), obs::TraceEventType::kVcFailed, id, failed_link,
            c.failed_at - c.active_at, c.request.bandwidth});
  invoke_callback(entry.on_failure, c);

  // The callback may have torn the circuit down (release_now retires it).
  const auto it = entries_.find(id);
  if (it == entries_.end() || it->second.circuit.state != CircuitState::kFailed) return;
  if (config_.resignal_on_failure && sim_.now() < booked_end(c)) {
    schedule_resignal(id);
  } else {
    retire(id);
  }
}

void Idc::schedule_resignal(std::uint64_t id) {
  Entry& entry = entries_.at(id);
  ++entry.resignal_attempts;
  const Seconds delay =
      config_.resignal_backoff *
      std::pow(config_.resignal_backoff_multiplier,
               static_cast<double>(entry.resignal_attempts - 1));
  entry.resignal_event = sim_.schedule_in(delay, [this, id] { try_resignal(id); });
}

void Idc::try_resignal(std::uint64_t id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return;  // released/retired while waiting
  Entry& entry = it->second;
  Circuit& c = entry.circuit;
  if (c.state != CircuitState::kFailed) return;

  const Seconds now = sim_.now();
  if (now >= booked_end(c)) {
    retire(id);  // the reservation window ran out during the outage
    return;
  }
  if (!breaker_.allow(now)) {
    // Breaker open: fail fast without touching the control plane or
    // consuming a re-signal attempt; come back once a probe is allowed.
    const Seconds retry_at =
        std::max(now + config_.resignal_backoff, breaker_.reopen_at());
    entry.resignal_event = sim_.schedule_at(retry_at, [this, id] { try_resignal(id); });
    return;
  }
  if (in_outage_) {
    // The probe found the control plane unreachable: a breaker failure,
    // not a path-computation attempt. Retry after the plain backoff; the
    // window-expiry check above bounds the loop.
    breaker_.record_failure(now);
    entry.resignal_event =
        sim_.schedule_in(config_.resignal_backoff, [this, id] { try_resignal(id); });
    return;
  }
  if (!c.profile.empty()) {
    // Shaped circuit: rebook the remaining *shaped* window — segments
    // already delivered stay gone; the straddling segment restarts now.
    std::vector<RateSegment> clipped;
    for (const RateSegment& s : c.profile) {
      if (s.end <= now) continue;
      clipped.push_back({std::max(s.start, now), s.end, s.rate});
    }
    const auto alt = net::shortest_path(topo_, c.request.src, c.request.dst,
                                        [this](net::LinkId l) { return link_usable(l); });
    if (!alt || !calendar_.fits_profile(*alt, clipped)) {
      // The control plane answered — that closes the breaker's book even
      // though admission failed for capacity reasons.
      breaker_.record_success(now);
      if (entry.resignal_attempts >= config_.max_resignal_attempts) {
        retire(id);  // give up; the circuit stays failed
        return;
      }
      schedule_resignal(id);
      return;
    }
    breaker_.record_success(now);
    c.path = *alt;
    c.profile = std::move(clipped);
    entry.booking = calendar_.book_profile(c.path, c.profile);
  } else {
    const auto path = paths_.compute(c.request.src, c.request.dst, c.request.bandwidth,
                                     now, c.request.end_time);
    if (!path) {
      // The control plane answered — that closes the breaker's book even
      // though admission failed for capacity reasons.
      breaker_.record_success(now);
      if (entry.resignal_attempts >= config_.max_resignal_attempts) {
        retire(id);  // give up; the circuit stays failed
        return;
      }
      schedule_resignal(id);
      return;
    }
    breaker_.record_success(now);

    // Re-homed: book the remaining window and bring the guarantee back.
    c.path = *path;
    entry.booking = calendar_.book(*path, now, c.request.end_time, c.request.bandwidth);
  }
  c.state = CircuitState::kActive;
  c.active_at = now;
  entry.resignal_attempts = 0;
  entry.release_event =
      sim_.schedule_at(booked_end(c), [this, id] { release(id); });
  ++active_circuits_;
  ++stats_.resignaled;

  obs::Observability& obs = sim_.obs();
  const Seconds outage = now - c.failed_at;
  obs.registry().add(id_resignaled_);
  obs.registry().observe(id_resignal_delay_hist_, outage);
  obs.registry().set(id_active_gauge_, static_cast<double>(active_circuits_));
  sync_calendar_gauge();
  // aux=1 marks a re-activation after failure; value is the outage length.
  obs.emit({now, obs::TraceEventType::kVcActivated, id, 1, outage,
            c.request.bandwidth});
  invoke_callback(entry.on_active, c);
}

void Idc::retire(std::uint64_t id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return;
  it->second.activate_event.cancel();
  it->second.release_event.cancel();
  it->second.resignal_event.cancel();
  terminal_.insert_or_assign(id, std::move(it->second.circuit));
  entries_.erase(it);
  if (config_.journal) config_.journal->tombstone("vc", id);
  while (terminal_.size() > config_.terminal_capacity) {
    terminal_.erase(terminal_.begin());  // ids are monotone: begin() is oldest
  }
}

void Idc::restore_link(net::LinkId link) { failed_links_.erase(link); }

void Idc::begin_outage() {
  if (in_outage_) return;
  in_outage_ = true;
  ++outage_count_;
  outage_began_ = sim_.now();
  ++stats_.outages;
  sim_.obs().registry().add(id_outages_);
  sim_.obs().emit({sim_.now(), obs::TraceEventType::kIdcOutageBegin, outage_count_, 0,
                   0.0, 0.0});
}

void Idc::end_outage() {
  if (!in_outage_) return;
  in_outage_ = false;
  sim_.obs().emit({sim_.now(), obs::TraceEventType::kIdcOutageEnd, outage_count_, 0,
                   sim_.now() - outage_began_, 0.0});
}

std::optional<std::vector<RateSegment>> Idc::shape_request(
    const net::Path& path, const ReservationRequest& request, Seconds activation,
    Seconds earliest) const {
  GRIDVC_PROF_ZONE("vc.idc.shape");
  // Chen & Primet: the request is a volume demand — preferred rate times
  // booked window — and any stepwise profile delivering that volume by
  // the deadline honors it. Greedy earliest-fill at the highest usable
  // rate finishes the volume as early as the headroom allows, which is
  // what minimizes completion time for a work-conserving data plane.
  //
  // The volume owed is anchored at `activation` even when the fill can
  // only begin at `earliest`: a scheduled circuit being reshaped after
  // its nominal activation still owes everything it was admitted for.
  const double volume = request.bandwidth * (request.end_time - activation);
  const Seconds fill_from = std::max(activation, earliest);
  if (fill_from >= request.end_time) return std::nullopt;
  const BitsPerSecond cap = request.max_bandwidth > 0.0
                                ? request.max_bandwidth
                                : std::numeric_limits<BitsPerSecond>::infinity();
  std::vector<RateSegment> profile;
  double remaining = volume;
  for (const RateSegment& piece :
       calendar_.headroom_profile(path, fill_from, request.end_time)) {
    // Floor to whole kbit/s: the calendar quantizes to that grid, so a
    // floored rate books at or below true headroom with zero rounding.
    const BitsPerSecond rate = std::floor(std::min(cap, piece.rate) / 1000.0) * 1000.0;
    if (rate <= 0.0) continue;
    const Seconds take = std::min(piece.end - piece.start, remaining / rate);
    if (!profile.empty() && profile.back().end == piece.start &&
        profile.back().rate == rate) {
      profile.back().end = piece.start + take;
    } else {
      profile.push_back({piece.start, piece.start + take, rate});
    }
    remaining -= rate * take;
    if (remaining <= volume * 1e-12) {
      remaining = 0.0;
      break;
    }
  }
  if (remaining > 0.0) return std::nullopt;  // volume cannot meet the deadline
  return profile;
}

std::optional<std::vector<RateSegment>> Idc::shape_with_defrag(
    const net::Path& path, const ReservationRequest& request, Seconds activation) {
  GRIDVC_PROF_ZONE("vc.idc.defrag");
  // Candidates for displacement: scheduled malleable circuits sharing a
  // link with `path` whose booked window overlaps the request window.
  // Their guarantee is not yet in force, so reshaping is invisible to the
  // data plane; active circuits are never touched.
  struct Displaced {
    std::uint64_t id = 0;
    bool was_flat = false;
    Seconds flat_start = 0.0, flat_end = 0.0;
    BitsPerSecond flat_rate = 0.0;
    std::vector<RateSegment> segments;  // prior shaped booking
  };
  std::vector<Displaced> displaced;
  for (const auto& [cid, e] : entries_) {  // std::map: ascending id, deterministic
    const Circuit& c = e.circuit;
    if (c.state != CircuitState::kScheduled || !c.request.malleable || e.booking == 0) {
      continue;
    }
    const Seconds b_start = c.profile.empty() ? e.activation : c.profile.front().start;
    if (booked_end(c) <= activation || b_start >= request.end_time) continue;
    bool shares = false;
    for (net::LinkId l : c.path) {
      if (std::find(path.begin(), path.end(), l) != path.end()) {
        shares = true;
        break;
      }
    }
    if (!shares) continue;
    Displaced d;
    d.id = cid;
    d.was_flat = c.profile.empty();
    d.flat_start = b_start;
    d.flat_end = c.request.end_time;
    d.flat_rate = c.request.bandwidth;
    d.segments = c.profile;
    displaced.push_back(std::move(d));
  }
  if (displaced.empty()) return std::nullopt;

  // Phase 1: release every displaced booking, opening the gap.
  for (const Displaced& d : displaced) {
    Entry& e = entries_.at(d.id);
    calendar_.release(e.booking);
    e.booking = 0;
  }

  // All-or-nothing: drop whatever the attempt booked, then reinstate
  // every displaced booking exactly as it was. Integer-kbps calendar
  // arithmetic makes the reinstate byte-exact.
  const auto rollback = [&](std::size_t rebooked, ReservationId probe) {
    for (std::size_t k = 0; k < rebooked; ++k) {
      Entry& e = entries_.at(displaced[k].id);
      calendar_.release(e.booking);
      e.booking = 0;
    }
    if (probe != 0) calendar_.release(probe);
    for (const Displaced& d : displaced) {
      Entry& e = entries_.at(d.id);
      if (d.was_flat) {
        e.booking = calendar_.book(e.circuit.path, d.flat_start, d.flat_end, d.flat_rate);
      } else {
        e.booking = calendar_.book_profile(e.circuit.path, d.segments);
      }
    }
  };

  // Phase 2: shape the new request into the opened gap and hold that
  // capacity with a probe booking while the displaced set re-packs.
  const auto shaped = shape_request(path, request, activation);
  if (!shaped) {
    rollback(0, 0);
    return std::nullopt;
  }
  const ReservationId probe = calendar_.book_profile(path, *shaped);

  // Phase 3: re-shape each displaced circuit around the probe, in id
  // order.
  std::vector<std::vector<RateSegment>> new_profiles(displaced.size());
  for (std::size_t k = 0; k < displaced.size(); ++k) {
    Entry& e = entries_.at(displaced[k].id);
    // A scheduled circuit's nominal activation can already be in the
    // past (its shaped profile simply starts later), so floor the
    // re-pack at now: the full admitted volume, booked from here on.
    const auto reshaped = shape_request(e.circuit.path, e.circuit.request, e.activation,
                                        sim_.now());
    if (!reshaped) {
      rollback(k, probe);
      return std::nullopt;
    }
    new_profiles[k] = *reshaped;
    e.booking = calendar_.book_profile(e.circuit.path, new_profiles[k]);
  }

  // Commit: adopt the reshaped profiles, re-anchor activate events that
  // moved, and re-journal the displaced circuits.
  for (std::size_t k = 0; k < displaced.size(); ++k) {
    Entry& e = entries_.at(displaced[k].id);
    const Seconds old_at = displaced[k].was_flat ? displaced[k].flat_start
                                                 : displaced[k].segments.front().start;
    e.circuit.profile = std::move(new_profiles[k]);
    const Seconds new_at = e.circuit.profile.front().start;
    if (new_at != old_at) {
      e.activate_event.cancel();
      const std::uint64_t cid = displaced[k].id;
      e.activate_event = sim_.schedule_at(new_at, [this, cid] { activate(cid); });
    }
    journal_reservation(displaced[k].id, e.circuit.request, e.activation,
                        e.circuit.profile);
  }
  calendar_.release(probe);  // the caller books the returned profile itself
  return shaped;
}

void Idc::journal_reservation(std::uint64_t id, const ReservationRequest& request,
                              Seconds activation, const std::vector<RateSegment>& profile) {
  if (!config_.journal) return;
  std::ostringstream payload;
  payload.precision(17);
  payload << request.src << ' ' << request.dst << ' ' << request.bandwidth << ' '
          << request.start_time << ' ' << request.end_time << ' ' << activation;
  // Malleable extension (absent in pre-malleable journals; replay treats
  // a 6-field payload as a flat booking): flags, step cap, and the shaped
  // profile so recovery can rebook the remaining *shaped* window.
  payload << ' ' << (request.malleable ? 1 : 0) << ' ' << request.max_bandwidth << ' '
          << profile.size();
  for (const RateSegment& s : profile) {
    payload << ' ' << s.start << ' ' << s.end << ' ' << s.rate;
  }
  config_.journal->append("vc", id, payload.str());
}

std::size_t Idc::recover_from_journal() {
  GRIDVC_PROF_ZONE("recovery.idc_replay");
  GRIDVC_REQUIRE(config_.journal != nullptr, "recover_from_journal needs a journal");
  GRIDVC_REQUIRE(entries_.empty(), "recover_from_journal on a non-empty IDC");
  const Seconds now = sim_.now();
  std::size_t restored = 0;
  std::size_t dropped = 0;
  for (const recovery::JournalRecord& rec : config_.journal->replay("vc")) {
    ReservationRequest request;
    Seconds activation = 0.0;
    std::istringstream in(rec.payload);
    in >> request.src >> request.dst >> request.bandwidth >> request.start_time >>
        request.end_time >> activation;
    GRIDVC_REQUIRE(!in.fail(), "malformed vc journal payload");
    // Malleable extension; a legacy 6-field payload reads as flat.
    int malleable = 0;
    BitsPerSecond max_bandwidth = 0.0;
    std::size_t seg_count = 0;
    std::vector<RateSegment> profile;
    if (in >> malleable >> max_bandwidth >> seg_count) {
      request.malleable = malleable != 0;
      request.max_bandwidth = max_bandwidth;
      profile.resize(seg_count);
      for (RateSegment& s : profile) in >> s.start >> s.end >> s.rate;
      GRIDVC_REQUIRE(!in.fail(), "malformed vc journal payload");
    }
    next_id_ = std::max(next_id_, rec.key + 1);
    // Expiry is the *booked* end — a shaped circuit delivering its volume
    // early expires with its profile. The boundary is exact: a window
    // with zero remaining seconds at recovery is expired (rebooking it
    // would create a zero-length booking), so it tombstones.
    const Seconds expiry = profile.empty() ? request.end_time : profile.back().end;
    if (expiry <= now) {
      // The window ran out while the IDC was down; nothing to restore.
      config_.journal->tombstone("vc", rec.key);
      ++dropped;
      continue;
    }
    Entry entry;
    entry.circuit.id = rec.key;
    entry.circuit.request = request;
    entry.circuit.state = CircuitState::kScheduled;
    entry.circuit.provision_started = now;
    Seconds start = 0.0;
    if (!profile.empty()) {
      // Rebook the remaining *shaped* window: segments already delivered
      // stay gone; the straddling segment restarts now.
      std::vector<RateSegment> clipped;
      for (const RateSegment& s : profile) {
        if (s.end <= now) continue;
        clipped.push_back({std::max(s.start, now), s.end, s.rate});
      }
      const auto path = net::shortest_path(topo_, request.src, request.dst,
                                           [this](net::LinkId l) { return link_usable(l); });
      if (!path || !calendar_.fits_profile(*path, clipped)) {
        config_.journal->tombstone("vc", rec.key);
        ++dropped;
        continue;
      }
      entry.circuit.path = *path;
      entry.circuit.profile = std::move(clipped);
      entry.booking = calendar_.book_profile(entry.circuit.path, entry.circuit.profile);
      start = entry.circuit.profile.front().start;
    } else {
      // Rebook the *remaining* window: an already-active circuit restarts
      // from now, a future reservation keeps its original activation.
      start = std::max(now, activation);
      const auto path = paths_.compute(request.src, request.dst, request.bandwidth, start,
                                       request.end_time);
      if (!path) {
        // Topology/calendar moved on while we were down; the reservation
        // can no longer be honored.
        config_.journal->tombstone("vc", rec.key);
        ++dropped;
        continue;
      }
      entry.circuit.path = *path;
      entry.booking = calendar_.book(*path, start, request.end_time, request.bandwidth);
    }
    entry.activation = start;
    const std::uint64_t id = rec.key;
    entry.activate_event = sim_.schedule_at(start, [this, id] { activate(id); });
    entries_.emplace(id, std::move(entry));
    ++restored;
  }
  stats_.recovered += restored;
  sync_calendar_gauge();
  // aux=1 tags the IDC's replay (aux=0 is the transfer service's).
  sim_.obs().emit({now, obs::TraceEventType::kJournalReplay,
                   static_cast<std::uint64_t>(restored), 1,
                   static_cast<double>(dropped), 0.0});
  return restored;
}

const Circuit& Idc::circuit(std::uint64_t circuit_id) const {
  const auto it = entries_.find(circuit_id);
  if (it != entries_.end()) return it->second.circuit;
  const auto term = terminal_.find(circuit_id);
  GRIDVC_REQUIRE(term != terminal_.end(), "lookup of unknown circuit");
  return term->second;
}

}  // namespace gridvc::vc
