#include "vc/path_computation.hpp"

#include "common/error.hpp"

namespace gridvc::vc {

PathComputer::PathComputer(const net::Topology& topo, const BandwidthCalendar& calendar,
                           LinkPolicy policy)
    : topo_(topo), calendar_(calendar), policy_(std::move(policy)) {}

std::optional<net::Path> PathComputer::compute(net::NodeId src, net::NodeId dst,
                                               BitsPerSecond rate, Seconds start,
                                               Seconds end) const {
  GRIDVC_REQUIRE(rate > 0.0, "circuit rate must be positive");
  GRIDVC_REQUIRE(start < end, "circuit window inverted");
  const auto usable = [&](net::LinkId l) {
    if (policy_ && !policy_(l)) return false;
    return calendar_.available(l, start, end) >= rate;
  };
  return net::shortest_path(topo_, src, dst, usable);
}

std::optional<net::Path> PathComputer::compute_within_domain(
    net::NodeId src, net::NodeId dst, BitsPerSecond rate, Seconds start, Seconds end,
    const std::string& domain) const {
  GRIDVC_REQUIRE(rate > 0.0, "circuit rate must be positive");
  GRIDVC_REQUIRE(start < end, "circuit window inverted");
  const auto usable = [&](net::LinkId l) {
    if (policy_ && !policy_(l)) return false;
    const net::Link& link = topo_.link(l);
    const auto in_domain = [&](net::NodeId n) {
      const net::Node& node = topo_.node(n);
      // Hosts are reachable from any domain's edge; routers must belong.
      return node.kind == net::NodeKind::kHost || node.domain == domain;
    };
    if (!in_domain(link.from) || !in_domain(link.to)) return false;
    return calendar_.available(l, start, end) >= rate;
  };
  return net::shortest_path(topo_, src, dst, usable);
}

}  // namespace gridvc::vc
