// Pluggable wall-clock abstraction for the daemon.
//
// The whole simulator stack runs in virtual seconds; a daemon serving
// real clients has to pin those seconds to something. WallClock is that
// pin: the daemon reads clock.now(), multiplies by the configured
// time-scale, and runs the simulator up to the resulting sim time
// before answering requests. Two implementations:
//
//   SteadyWallClock  real time (std::chrono::steady_clock since
//                    construction) — production daemon mode.
//   TestWallClock    virtual time the daemon *jumps* to the next sim
//                    deadline whenever it would otherwise sleep, so CI
//                    smoke tests replay hours of sim activity in
//                    milliseconds while exercising the same code path.
#pragma once

#include "common/units.hpp"

namespace gridvc::frontend {

class WallClock {
 public:
  virtual ~WallClock() = default;

  /// Seconds since the clock's epoch (construction). Monotonic.
  virtual Seconds now() const = 0;

  /// True for virtual clocks: instead of sleeping until a deadline the
  /// daemon calls advance_to() and proceeds immediately.
  virtual bool is_virtual() const { return false; }

  /// Jump a virtual clock forward (never backward). No-op on real
  /// clocks — they advance on their own.
  virtual void advance_to(Seconds /*t*/) {}
};

/// Real time: std::chrono::steady_clock, epoch at construction.
class SteadyWallClock final : public WallClock {
 public:
  SteadyWallClock();
  Seconds now() const override;

 private:
  double epoch_ns_;
};

/// Manually-driven time for tests and the CI daemon smoke. Owned and
/// advanced by the daemon's handler thread; not thread-safe.
class TestWallClock final : public WallClock {
 public:
  Seconds now() const override { return now_; }
  bool is_virtual() const override { return true; }
  void advance_to(Seconds t) override {
    if (t > now_) now_ = t;
  }

 private:
  Seconds now_ = 0.0;
};

}  // namespace gridvc::frontend
