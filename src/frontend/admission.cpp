#include "frontend/admission.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "common/error.hpp"

namespace gridvc::frontend {

namespace {

constexpr std::uint64_t kCloseDisconnect = 0;
constexpr std::uint64_t kCloseIdleReap = 1;

}  // namespace

const char* reject_reason_name(RejectReason reason) {
  switch (reason) {
    case RejectReason::kRateLimited: return "rate_limited";
    case RejectReason::kQueueFull: return "queue_full";
    case RejectReason::kQuotaBytes: return "quota_bytes";
    case RejectReason::kBackpressure: return "backpressure";
    case RejectReason::kBreakerOpen: return "breaker_open";
  }
  return "unknown";
}

FrontEnd::FrontEnd(sim::Simulator& sim, gridftp::TransferService& service,
                   FrontEndConfig config)
    : sim_(sim), service_(service), config_(std::move(config)) {
  GRIDVC_REQUIRE(!config_.tenants.empty(),
                 "front-end needs at least one tenant");
  GRIDVC_REQUIRE(config_.drr_quantum > 0, "drr_quantum must be positive");
  GRIDVC_REQUIRE(config_.session_idle_timeout <= 0.0 || config_.reap_interval > 0.0,
                 "reap_interval must be positive when idle reaping is on");
  auto& reg = sim_.obs().registry();
  for (const TenantConfig& tc : config_.tenants) {
    GRIDVC_REQUIRE(!tc.name.empty() && tc.name != "-" &&
                       tc.name.find(' ') == std::string::npos,
                   "tenant name must be non-empty, not '-', and space-free");
    GRIDVC_REQUIRE(tc.weight > 0.0, "tenant weight must be positive");
    GRIDVC_REQUIRE(tenant_index_.count(tc.name) == 0,
                   "duplicate tenant '" + tc.name + "'");
    tenant_index_.emplace(tc.name, static_cast<std::uint32_t>(tenants_.size()));
    TenantRt t;
    t.cfg = tc;
    t.bucket.tokens = std::max(1.0, tc.submit_burst);
    const std::string p = "gridvc_front_tenant_" + tc.name + "_";
    t.id_submitted = reg.counter(p + "submitted", "submissions attempted");
    t.id_accepted = reg.counter(p + "accepted", "submissions accepted");
    t.id_rejected = reg.counter(p + "rejected", "submissions refused");
    t.id_shed = reg.counter(p + "shed", "queued tickets shed");
    t.id_dispatched = reg.counter(p + "dispatched", "tickets handed to backend");
    t.id_completed = reg.counter(p + "completed", "tickets backend-terminal");
    t.id_queued_gauge = reg.gauge(p + "queued", "front-queue depth");
    t.id_queued_bytes_gauge = reg.gauge(p + "queued_bytes", "front-queue bytes");
    t.id_in_flight_gauge = reg.gauge(p + "in_flight", "dispatched, unfinished");
    t.id_queue_wait_hist =
        reg.log_histogram(p + "queue_wait_seconds", "front-queue wait at dispatch");
    tenants_.push_back(std::move(t));
  }
  id_sessions_open_gauge_ = reg.gauge("gridvc_front_sessions_open", "open sessions");
  id_sessions_reaped_ = reg.counter("gridvc_front_sessions_reaped",
                                    "sessions closed by the idle sweep");
  id_rejections_ = reg.counter("gridvc_front_rejections", "refused submissions");
  id_backpressure_sheds_ = reg.counter("gridvc_front_backpressure_sheds",
                                       "tickets reclaimed by the global limit");
  id_queued_gauge_ = reg.gauge("gridvc_front_queued", "front-queued tickets");
  id_queued_bytes_gauge_ = reg.gauge("gridvc_front_queued_bytes",
                                     "front-queued bytes");
}

std::uint64_t FrontEnd::connect(const std::string& tenant) {
  const auto it = tenant_index_.find(tenant);
  if (it == tenant_index_.end()) {
    throw NotFoundError("unknown tenant '" + tenant + "'");
  }
  const std::uint64_t id = next_session_++;
  Session s;
  s.tenant_idx = it->second;
  s.last_activity = sim_.now();
  sessions_.emplace(id, std::move(s));
  ++sessions_open_;
  sim_.obs().registry().set(id_sessions_open_gauge_,
                            static_cast<double>(sessions_open_));
  sim_.obs().emit({sim_.now(), obs::TraceEventType::kFrontSessionOpened, id,
                   it->second, 0.0, 0.0});
  arm_reaper();
  return id;
}

FrontEnd::Session& FrontEnd::checked_session(std::uint64_t session) {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    throw NotFoundError("unknown session " + std::to_string(session));
  }
  if (!it->second.open) {
    throw NotFoundError("session " + std::to_string(session) +
                        " is closed (disconnected or idle-reaped)");
  }
  it->second.last_activity = sim_.now();
  return it->second;
}

Bytes FrontEnd::ticket_bytes(const Ticket& t) const {
  return std::accumulate(t.files.begin(), t.files.end(), Bytes{0});
}

void FrontEnd::refill_bucket(TenantRt& t) {
  if (t.cfg.submit_rate <= 0.0) return;
  const Seconds now = sim_.now();
  const double cap = std::max(1.0, t.cfg.submit_burst);
  t.bucket.tokens = std::min(
      cap, t.bucket.tokens + (now - t.bucket.last_refill) * t.cfg.submit_rate);
  t.bucket.last_refill = now;
}

Seconds FrontEnd::backpressure_hint(const TenantRt& t) const {
  double frac = 0.0;
  if (config_.global_queued_bytes_limit > 0) {
    frac = std::max(frac, static_cast<double>(total_queued_bytes_) /
                              static_cast<double>(config_.global_queued_bytes_limit));
  }
  if (t.cfg.max_queued_bytes > 0) {
    frac = std::max(frac, static_cast<double>(t.queued_bytes) /
                              static_cast<double>(t.cfg.max_queued_bytes));
  }
  return config_.retry_after_base * (1.0 + frac);
}

SubmitResult FrontEnd::reject(TenantRt& t, std::uint64_t session,
                              RejectReason reason, Seconds retry_after) {
  ++t.stats.rejected;
  auto& reg = sim_.obs().registry();
  reg.add(t.id_rejected);
  reg.add(id_rejections_);
  sim_.obs().emit({sim_.now(), obs::TraceEventType::kFrontReject, 0, session,
                   retry_after, static_cast<double>(reason)});
  SubmitResult r;
  r.accepted = false;
  r.reason = reason;
  r.retry_after = retry_after;
  return r;
}

SubmitResult FrontEnd::submit(std::uint64_t session, std::string label,
                              std::vector<Bytes> files,
                              gridftp::TransferSpec transfer_template,
                              const gridftp::SubmitOptions& options,
                              const std::string& idempotency_key,
                              gridftp::TransferService::TaskDoneFn on_done) {
  Session& s = checked_session(session);
  GRIDVC_REQUIRE(!files.empty(), "a submission needs at least one file");
  if (!idempotency_key.empty()) {
    const auto it = s.idempotency.find(idempotency_key);
    if (it != s.idempotency.end()) {
      SubmitResult r;
      r.accepted = true;
      r.duplicate = true;
      r.ticket = it->second;
      return r;
    }
  }
  TenantRt& t = tenants_[s.tenant_idx];
  ++t.stats.submitted;
  sim_.obs().registry().add(t.id_submitted);

  // Gate order: control-plane health, then rate, then space. A client
  // hammering a sick service learns to back off before it spends quota.
  if (config_.breaker != nullptr &&
      config_.breaker->state(sim_.now()) == recovery::BreakerState::kOpen) {
    const Seconds wait =
        std::max(0.0, config_.breaker->reopen_at() - sim_.now());
    return reject(t, session, RejectReason::kBreakerOpen, wait);
  }
  refill_bucket(t);
  if (t.cfg.submit_rate > 0.0) {
    if (t.bucket.tokens < 1.0) {
      const Seconds wait = (1.0 - t.bucket.tokens) / t.cfg.submit_rate;
      return reject(t, session, RejectReason::kRateLimited, wait);
    }
    t.bucket.tokens -= 1.0;
  }

  const Bytes bytes =
      std::accumulate(files.begin(), files.end(), Bytes{0});
  if (t.cfg.max_queued_bytes > 0 &&
      t.queued_bytes + bytes > t.cfg.max_queued_bytes) {
    return reject(t, session, RejectReason::kQuotaBytes, backpressure_hint(t));
  }
  if (t.cfg.queue_limit > 0 && t.queue.size() >= t.cfg.queue_limit) {
    if (!evict_for(t, options.priority)) {
      return reject(t, session, RejectReason::kQueueFull, backpressure_hint(t));
    }
  }
  if (config_.global_queued_bytes_limit > 0 &&
      total_queued_bytes_ + bytes > config_.global_queued_bytes_limit &&
      !reclaim_global(bytes, s.tenant_idx)) {
    return reject(t, session, RejectReason::kBackpressure, backpressure_hint(t));
  }

  Ticket k;
  k.label = std::move(label);
  k.files = std::move(files);
  k.transfer_template = std::move(transfer_template);
  k.options = options;
  k.on_done = std::move(on_done);
  k.tenant_idx = s.tenant_idx;
  k.status.session = session;
  k.status.tenant = t.cfg.name;
  k.status.bytes_total = bytes;
  k.status.submitted_at = sim_.now();
  const std::uint64_t ticket = accept_ticket(t, s, session, std::move(k));
  if (!idempotency_key.empty()) {
    s.idempotency.emplace(idempotency_key, ticket);
  }
  SubmitResult r;
  r.accepted = true;
  r.ticket = ticket;
  pump();
  return r;
}

std::uint64_t FrontEnd::accept_ticket(TenantRt& t, Session& s,
                                      std::uint64_t session_id, Ticket ticket) {
  const std::uint64_t id = next_ticket_++;
  ticket.status.ticket = id;
  const Bytes bytes = ticket.status.bytes_total;
  tickets_.emplace(id, std::move(ticket));
  s.tickets.push_back(id);
  t.queue.push_back(id);
  t.queued_bytes += bytes;
  total_queued_bytes_ += bytes;
  ++total_queued_;
  max_ticket_bytes_ = std::max(max_ticket_bytes_, bytes);
  ++t.stats.accepted;
  sim_.obs().registry().add(t.id_accepted);
  sync_tenant_gauges(t);
  sim_.obs().emit({sim_.now(), obs::TraceEventType::kFrontSubmit, id, session_id,
                   static_cast<double>(bytes),
                   static_cast<double>(tickets_.at(id).tenant_idx)});
  return id;
}

void FrontEnd::drop_queued(std::uint64_t ticket, TicketState state,
                           FrontShedReason reason) {
  Ticket& k = tickets_.at(ticket);
  TenantRt& t = tenants_[k.tenant_idx];
  const auto it = std::find(t.queue.begin(), t.queue.end(), ticket);
  GRIDVC_REQUIRE(it != t.queue.end(), "drop_queued: ticket not queued");
  t.queue.erase(it);
  const Bytes bytes = k.status.bytes_total;
  t.queued_bytes -= bytes;
  total_queued_bytes_ -= bytes;
  --total_queued_;
  k.status.state = state;
  k.status.finished_at = sim_.now();
  auto& reg = sim_.obs().registry();
  if (state == TicketState::kShed) {
    ++t.stats.shed;
    reg.add(t.id_shed);
    sim_.obs().emit({sim_.now(), obs::TraceEventType::kFrontShed, ticket,
                     static_cast<std::uint64_t>(reason), 0.0, 0.0});
  } else {
    ++t.stats.cancelled;
    sim_.obs().emit({sim_.now(), obs::TraceEventType::kFrontCancel, ticket,
                     0, 0.0, 0.0});
  }
  sync_tenant_gauges(t);
}

bool FrontEnd::evict_for(TenantRt& t, int incoming_pri) {
  switch (t.cfg.policy) {
    case gridftp::OverloadPolicy::kRejectNew:
      return false;
    case gridftp::OverloadPolicy::kShedOldest:
      drop_queued(t.queue.front(), TicketState::kShed,
                  FrontShedReason::kQueueFullEvicted);
      return true;
    case gridftp::OverloadPolicy::kPriority: {
      // Same contract as the backend policy: victim is the oldest
      // (smallest ticket id) among the lowest-priority queued tickets,
      // and an incoming submission that merely ties is itself refused.
      std::uint64_t victim = t.queue.front();
      const auto key = [&](std::uint64_t id) {
        return std::pair(tickets_.at(id).options.priority, id);
      };
      for (const std::uint64_t id : t.queue) {
        if (key(id) < key(victim)) victim = id;
      }
      if (tickets_.at(victim).options.priority >= incoming_pri) return false;
      drop_queued(victim, TicketState::kShed,
                  FrontShedReason::kQueueFullEvicted);
      return true;
    }
  }
  return false;
}

bool FrontEnd::reclaim_global(Bytes needed, std::uint32_t submitter_idx) {
  const double total_weight = std::accumulate(
      tenants_.begin(), tenants_.end(), 0.0,
      [](double acc, const TenantRt& t) { return acc + t.cfg.weight; });
  const auto fair_share = [&](std::size_t i) {
    return static_cast<double>(config_.global_queued_bytes_limit) *
           tenants_[i].cfg.weight / total_weight;
  };
  // Plan first, execute only if the plan frees enough: a submission that
  // ends up rejected anyway must not have destroyed anyone's queued
  // work. Victim order: over-fair-share tenant of lowest weight, ties to
  // the higher tenant index; within a tenant, oldest ticket first. The
  // submitter never sheds others to cover its own excess, and an
  // at-or-under-share tenant is never victimised — that is the isolation
  // invariant the chaos harness checks.
  std::vector<Bytes> hypo_queued(tenants_.size());
  std::vector<std::size_t> hypo_next(tenants_.size(), 0);
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    hypo_queued[i] = tenants_[i].queued_bytes;
  }
  std::vector<std::uint64_t> plan;
  Bytes hypo_total = total_queued_bytes_;
  while (hypo_total + needed > config_.global_queued_bytes_limit) {
    std::int64_t victim = -1;
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
      if (i == submitter_idx || hypo_next[i] >= tenants_[i].queue.size()) continue;
      if (static_cast<double>(hypo_queued[i]) <= fair_share(i)) continue;
      if (victim < 0 ||
          std::pair(tenants_[i].cfg.weight, -static_cast<std::int64_t>(i)) <
              std::pair(tenants_[static_cast<std::size_t>(victim)].cfg.weight,
                        -victim)) {
        victim = static_cast<std::int64_t>(i);
      }
    }
    if (victim < 0) return false;
    const auto v = static_cast<std::size_t>(victim);
    const std::uint64_t ticket = tenants_[v].queue[hypo_next[v]++];
    const Bytes bytes = tickets_.at(ticket).status.bytes_total;
    hypo_queued[v] -= bytes;
    hypo_total -= bytes;
    plan.push_back(ticket);
  }
  auto& reg = sim_.obs().registry();
  for (const std::uint64_t ticket : plan) {
    const std::size_t v = tickets_.at(ticket).tenant_idx;
    if (static_cast<double>(tenants_[v].queued_bytes) <= fair_share(v)) {
      ++isolation_violations_;
    }
    drop_queued(ticket, TicketState::kShed, FrontShedReason::kBackpressureShed);
    reg.add(id_backpressure_sheds_);
  }
  return true;
}

bool FrontEnd::backend_has_capacity() const {
  return service_.queued_tasks() == 0 &&
         service_.active_tasks() <
             static_cast<std::size_t>(service_.config().max_active_tasks);
}

void FrontEnd::pump() {
  if (pumping_) return;
  pumping_ = true;
  const auto eligible = [&](const TenantRt& t) {
    return !t.queue.empty() && (t.cfg.max_in_flight == 0 ||
                                t.in_flight < t.cfg.max_in_flight);
  };
  while (backend_has_capacity() && total_queued_ > 0) {
    std::size_t scanned = 0;
    while (scanned < tenants_.size() && !eligible(tenants_[cursor_])) {
      // A tenant blocked only by its own in-flight cap is throttled, not
      // starved: its rotation counter resets.
      if (!tenants_[cursor_].queue.empty()) tenants_[cursor_].rotations_waited = 0;
      mid_visit_ = false;
      cursor_ = (cursor_ + 1) % static_cast<std::uint32_t>(tenants_.size());
      ++scanned;
    }
    if (!eligible(tenants_[cursor_])) break;  // backlog exists but all capped
    TenantRt& t = tenants_[cursor_];
    if (!mid_visit_) {
      t.deficit += static_cast<double>(config_.drr_quantum) * t.cfg.weight;
    }
    mid_visit_ = false;
    bool dispatched_any = false;
    bool capacity_break = false;
    while (eligible(t)) {
      const std::uint64_t head = t.queue.front();
      const double bytes =
          static_cast<double>(tickets_.at(head).status.bytes_total);
      if (bytes > t.deficit) break;
      if (!backend_has_capacity()) {
        capacity_break = true;
        break;
      }
      t.deficit -= bytes;
      dispatch(head);
      dispatched_any = true;
    }
    if (capacity_break) {
      // Slot shortage interrupted the visit mid-deficit; resume this
      // tenant, without a fresh quantum, when a completion frees a slot.
      mid_visit_ = true;
      break;
    }
    if (t.queue.empty()) {
      t.deficit = 0.0;  // classic DRR: deficit does not survive an empty queue
      t.rotations_waited = 0;
    } else if (dispatched_any) {
      t.rotations_waited = 0;
    } else {
      // Deficit granted, head still too big: the bound says it fits
      // within ceil(max_ticket_bytes / quantum) grants. Beyond that the
      // dispatcher is starving the tenant — a contract violation.
      ++t.rotations_waited;
      const double quantum =
          static_cast<double>(config_.drr_quantum) * t.cfg.weight;
      const auto bound = static_cast<std::uint64_t>(std::ceil(
                             static_cast<double>(max_ticket_bytes_) / quantum)) +
                         1;
      if (t.rotations_waited > bound) ++starvation_violations_;
    }
    cursor_ = (cursor_ + 1) % static_cast<std::uint32_t>(tenants_.size());
  }
  pumping_ = false;
}

void FrontEnd::dispatch(std::uint64_t ticket_id) {
  Ticket& k = tickets_.at(ticket_id);
  TenantRt& t = tenants_[k.tenant_idx];
  GRIDVC_REQUIRE(!t.queue.empty() && t.queue.front() == ticket_id,
                 "dispatch: ticket must be the tenant's queue head");
  t.queue.pop_front();
  const Bytes bytes = k.status.bytes_total;
  t.queued_bytes -= bytes;
  total_queued_bytes_ -= bytes;
  --total_queued_;
  ++t.in_flight;
  ++total_in_flight_;

  gridftp::SubmitOptions opts = k.options;
  opts.tenant = t.cfg.name;
  const std::uint64_t task = service_.submit(
      k.label, k.files, k.transfer_template, opts,
      [this, ticket_id](const gridftp::TaskStatus& st) {
        on_backend_done(ticket_id, st);
      });
  const Seconds now = sim_.now();
  const Seconds wait = now - k.status.submitted_at;
  k.status.state = TicketState::kDispatched;
  k.status.task_id = task;
  k.status.dispatched_at = now;
  ++t.stats.dispatched;
  auto& reg = sim_.obs().registry();
  reg.add(t.id_dispatched);
  reg.observe(t.id_queue_wait_hist, wait);
  sync_tenant_gauges(t);
  sim_.obs().emit({now, obs::TraceEventType::kFrontDispatch, ticket_id, task,
                   wait, static_cast<double>(k.tenant_idx)});
}

void FrontEnd::on_backend_done(std::uint64_t ticket_id,
                               const gridftp::TaskStatus& status) {
  Ticket& k = tickets_.at(ticket_id);
  TenantRt& t = tenants_[k.tenant_idx];
  k.status.state = TicketState::kDone;
  k.status.task_state = status.state;
  k.status.bytes_done = status.bytes_done;
  k.status.finished_at = sim_.now();
  --t.in_flight;
  --total_in_flight_;
  ++t.stats.completed;
  sim_.obs().registry().add(t.id_completed);
  sync_tenant_gauges(t);
  if (k.on_done) k.on_done(status);
  pump();
}

TicketStatus FrontEnd::poll(std::uint64_t session, std::uint64_t ticket) {
  checked_session(session);
  const auto it = tickets_.find(ticket);
  if (it == tickets_.end() || it->second.status.session != session) {
    throw NotFoundError("session " + std::to_string(session) +
                        " owns no ticket " + std::to_string(ticket));
  }
  return status(ticket);
}

TicketStatus FrontEnd::status(std::uint64_t ticket) const {
  const auto it = tickets_.find(ticket);
  if (it == tickets_.end()) {
    throw NotFoundError("unknown ticket " + std::to_string(ticket));
  }
  TicketStatus out = it->second.status;
  if (out.state == TicketState::kDispatched) {
    out.bytes_done = service_.status(out.task_id).bytes_done;
  }
  return out;
}

bool FrontEnd::cancel(std::uint64_t session, std::uint64_t ticket) {
  checked_session(session);
  const auto it = tickets_.find(ticket);
  if (it == tickets_.end() || it->second.status.session != session) {
    throw NotFoundError("session " + std::to_string(session) +
                        " owns no ticket " + std::to_string(ticket));
  }
  Ticket& k = it->second;
  switch (k.status.state) {
    case TicketState::kQueued:
      drop_queued(ticket, TicketState::kCancelled,
                  FrontShedReason::kDisconnectAborted);
      return true;
    case TicketState::kDispatched:
      return service_.cancel(k.status.task_id);
    default:
      return false;
  }
}

void FrontEnd::disconnect(std::uint64_t session) {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) {
    throw NotFoundError("unknown session " + std::to_string(session));
  }
  if (!it->second.open) return;  // idempotent
  close_session(session, it->second, kCloseDisconnect);
}

void FrontEnd::close_session(std::uint64_t session_id, Session& s,
                             std::uint64_t close_reason) {
  s.open = false;
  --sessions_open_;
  sim_.obs().registry().set(id_sessions_open_gauge_,
                            static_cast<double>(sessions_open_));
  if (config_.abort_on_disconnect) {
    for (const std::uint64_t ticket : s.tickets) {
      const Ticket& k = tickets_.at(ticket);
      if (k.status.state == TicketState::kQueued) {
        drop_queued(ticket, TicketState::kShed,
                    FrontShedReason::kDisconnectAborted);
      } else if (k.status.state == TicketState::kDispatched) {
        service_.cancel(k.status.task_id);
      }
    }
  }
  sim_.obs().emit({sim_.now(), obs::TraceEventType::kFrontSessionClosed,
                   session_id, close_reason, 0.0, 0.0});
}

TenantStats FrontEnd::tenant_stats(const std::string& tenant) const {
  const auto it = tenant_index_.find(tenant);
  if (it == tenant_index_.end()) {
    throw NotFoundError("unknown tenant '" + tenant + "'");
  }
  const TenantRt& t = tenants_[it->second];
  TenantStats out = t.stats;
  out.queued = t.queue.size();
  out.queued_bytes = t.queued_bytes;
  out.in_flight = t.in_flight;
  return out;
}

std::vector<TenantConfig> FrontEnd::tenants() const {
  std::vector<TenantConfig> out;
  out.reserve(tenants_.size());
  for (const TenantRt& t : tenants_) out.push_back(t.cfg);
  return out;
}

void FrontEnd::arm_reaper() {
  if (config_.session_idle_timeout <= 0.0) return;
  if (reaper_.pending()) return;
  reaper_ = sim_.schedule_periodic(sim_.now() + config_.reap_interval,
                                   config_.reap_interval,
                                   [this] { return reap_idle(); });
}

bool FrontEnd::reap_idle() {
  const Seconds now = sim_.now();
  for (auto& [id, s] : sessions_) {
    if (s.open && now - s.last_activity >= config_.session_idle_timeout) {
      ++sessions_reaped_;
      sim_.obs().registry().add(id_sessions_reaped_);
      close_session(id, s, kCloseIdleReap);
    }
  }
  // Once every session is closed the sweep disarms so the simulator can
  // drain; the next connect() re-arms it.
  return sessions_open_ > 0;
}

void FrontEnd::stop_reaper() { reaper_.cancel(); }

void FrontEnd::sync_tenant_gauges(TenantRt& t) {
  auto& reg = sim_.obs().registry();
  reg.set(t.id_queued_gauge, static_cast<double>(t.queue.size()));
  reg.set(t.id_queued_bytes_gauge, static_cast<double>(t.queued_bytes));
  reg.set(t.id_in_flight_gauge, static_cast<double>(t.in_flight));
  reg.set(id_queued_gauge_, static_cast<double>(total_queued_));
  reg.set(id_queued_bytes_gauge_, static_cast<double>(total_queued_bytes_));
}

}  // namespace gridvc::frontend
