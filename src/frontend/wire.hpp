// Newline-delimited JSON wire protocol for the admission daemon.
//
// One request object per line, one response object per line, no framing
// beyond '\n'. The vocabulary mirrors the FrontEnd API:
//
//   {"op":"connect","tenant":"alice"}
//     -> {"ok":true,"session":1}
//   {"op":"submit","session":1,"label":"job","files":[1048576,2097152],
//    "priority":3,"deadline":0,"key":"retry-token"}
//     -> {"ok":true,"ticket":7}
//     -> {"ok":true,"ticket":7,"duplicate":true}          (idempotent repeat)
//     -> {"ok":false,"rejected":true,"reason":"rate_limited",
//         "retry_after":1.5}                              (admission refusal)
//   {"op":"poll","session":1,"ticket":7}
//     -> {"ok":true,"state":"dispatched","bytes_total":...,"bytes_done":...}
//   {"op":"cancel","session":1,"ticket":7} -> {"ok":true,"cancelled":true}
//   {"op":"disconnect","session":1}        -> {"ok":true}
//   {"op":"stats","tenant":"alice"}        -> {"ok":true,"accepted":...}
//   {"op":"ping"}                          -> {"ok":true,"time":<sim now>}
//
// Structural errors (bad JSON, unknown op, missing field) and domain
// errors (unknown session/ticket/tenant) both come back as
// {"ok":false,"error":"<message>"} — a refusal by the admission policy
// is not an error, it is a negative SubmitResult.
//
// Parsing reuses the strict obs::Json parser; responses are emitted by
// hand (flat objects, no escapes — labels and tenant names are
// validated token-like elsewhere).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "frontend/admission.hpp"
#include "gridftp/transfer_engine.hpp"

namespace gridvc::frontend {

/// Everything a wire request needs to execute. The transfer template
/// (endpoints, parallelism) is server configuration — clients name only
/// byte sizes, never endpoints.
struct WireContext {
  FrontEnd& front;
  sim::Simulator& sim;
  gridftp::TransferSpec transfer_template;
};

/// Outcome of one request line. The session bookkeeping fields let the
/// daemon maintain its connection -> sessions map (so a dropped
/// connection can disconnect what it opened) without parsing its own
/// responses.
struct WireResult {
  std::string response;  ///< one JSON object, no trailing newline
  std::optional<std::uint64_t> opened_session;
  std::optional<std::uint64_t> closed_session;
};

/// Execute one request line against the front-end. Never throws: every
/// failure becomes an {"ok":false,...} response.
WireResult handle_wire_line(WireContext& ctx, const std::string& line);

const char* ticket_state_name(TicketState state);
const char* task_state_name(gridftp::TaskState state);

}  // namespace gridvc::frontend
