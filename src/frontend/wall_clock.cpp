#include "frontend/wall_clock.hpp"

#include <chrono>

namespace gridvc::frontend {

namespace {

double steady_ns() {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

SteadyWallClock::SteadyWallClock() : epoch_ns_(steady_ns()) {}

Seconds SteadyWallClock::now() const { return (steady_ns() - epoch_ns_) * 1e-9; }

}  // namespace gridvc::frontend
