#include "frontend/daemon.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstddef>
#include <cstring>

#include "common/error.hpp"

namespace gridvc::frontend {

namespace {

volatile std::sig_atomic_t g_sigterm = 0;

void on_sigterm(int /*signo*/) { g_sigterm = 1; }

/// Fill a sockaddr_un for `path`; '@' prefix = Linux abstract namespace.
socklen_t make_address(const std::string& path, sockaddr_un& addr) {
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  GRIDVC_REQUIRE(!path.empty(), "socket path must not be empty");
  GRIDVC_REQUIRE(path.size() < sizeof(addr.sun_path),
                 "socket path too long for sun_path");
  if (path[0] == '@') {
    // Abstract socket: leading NUL byte, name after it, no filesystem
    // entry. The address length must cover exactly the used bytes.
    std::memcpy(addr.sun_path + 1, path.data() + 1, path.size() - 1);
    return static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) + path.size());
  }
  std::memcpy(addr.sun_path, path.data(), path.size());
  return static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) + path.size() + 1);
}

}  // namespace

RequestRing::RequestRing(std::size_t capacity) : capacity_(capacity) {
  GRIDVC_REQUIRE(capacity > 0, "ring capacity must be positive");
}

void RequestRing::push(Item item) {
  std::unique_lock<std::mutex> lk(mu_);
  not_full_.wait(lk, [&] { return items_.size() < capacity_; });
  items_.push_back(std::move(item));
  not_empty_.notify_one();
}

bool RequestRing::pop(Item& out, int timeout_ms) {
  std::unique_lock<std::mutex> lk(mu_);
  if (timeout_ms > 0) {
    not_empty_.wait_for(lk, std::chrono::milliseconds(timeout_ms),
                        [&] { return !items_.empty(); });
  }
  if (items_.empty()) return false;
  out = std::move(items_.front());
  items_.pop_front();
  not_full_.notify_one();
  return true;
}

std::size_t RequestRing::depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return items_.size();
}

Daemon::Daemon(sim::Simulator& sim, FrontEnd& front, WallClock& clock,
               DaemonConfig config)
    : sim_(sim),
      front_(front),
      clock_(clock),
      config_(std::move(config)),
      wire_{front_, sim_, config_.transfer_template},
      ring_(config_.ring_capacity) {
  GRIDVC_REQUIRE(config_.time_scale > 0.0, "time_scale must be positive");
}

Daemon::~Daemon() {
  if (accept_thread_.joinable()) accept_thread_.join();
  std::lock_guard<std::mutex> lk(readers_mu_);
  for (std::thread& t : readers_) {
    if (t.joinable()) t.join();
  }
}

void Daemon::install_sigterm_handler() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = on_sigterm;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

bool Daemon::shutdown_requested() const {
  return shutdown_.load() || g_sigterm != 0;
}

void Daemon::accept_loop() {
  while (!shutdown_requested()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen socket shut down by the teardown path
    }
    std::lock_guard<std::mutex> lk(readers_mu_);
    conn_fds_.push_back(fd);
    readers_.emplace_back(&Daemon::reader_loop, this, fd);
  }
}

void Daemon::reader_loop(int connection) {
  std::string pending;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::read(connection, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    pending.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos;
    while ((pos = pending.find('\n')) != std::string::npos) {
      ring_.push({connection, pending.substr(0, pos), false});
      pending.erase(0, pos + 1);
    }
  }
  ring_.push({connection, std::string(), true});
}

void Daemon::handle_item(const RequestRing::Item& item) {
  if (item.eof) {
    drop_connection(item.connection);
    return;
  }
  ++requests_handled_;
  const WireResult r = handle_wire_line(wire_, item.line);
  if (r.opened_session) {
    connection_sessions_[item.connection].push_back(*r.opened_session);
  }
  if (r.closed_session) {
    const auto it = connection_sessions_.find(item.connection);
    if (it != connection_sessions_.end()) {
      auto& v = it->second;
      v.erase(std::remove(v.begin(), v.end(), *r.closed_session), v.end());
    }
  }
  const std::string out = r.response + "\n";
  // Best-effort: a client that vanished mid-reply is cleaned up when
  // its reader reports EOF. MSG_NOSIGNAL keeps SIGPIPE out of it.
  (void)::send(item.connection, out.data(), out.size(), MSG_NOSIGNAL);
}

void Daemon::drop_connection(int connection) {
  const auto it = connection_sessions_.find(connection);
  if (it != connection_sessions_.end()) {
    for (const std::uint64_t session : it->second) {
      front_.disconnect(session);  // idempotent on already-closed sessions
    }
    connection_sessions_.erase(it);
  }
  ::close(connection);
}

std::uint64_t Daemon::run() {
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  GRIDVC_REQUIRE(listen_fd_ >= 0, "socket() failed");
  sockaddr_un addr;
  const socklen_t len = make_address(config_.socket_path, addr);
  if (config_.socket_path[0] != '@') ::unlink(config_.socket_path.c_str());
  GRIDVC_REQUIRE(
      ::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), len) == 0,
      "bind('" + config_.socket_path + "') failed: " + std::strerror(errno));
  GRIDVC_REQUIRE(::listen(listen_fd_, 16) == 0, "listen() failed");
  accept_thread_ = std::thread(&Daemon::accept_loop, this);

  const double scale = config_.time_scale;
  RequestRing::Item item;
  while (!shutdown_requested()) {
    // Pin sim time to the wall: nothing in the simulator may run ahead
    // of what the clock says has elapsed.
    sim_.run_until(clock_.now() * scale);
    if (clock_.is_virtual()) {
      // Virtual time: requests first, then jump to the next deadline;
      // idle only when both the ring and the event queue are empty.
      if (ring_.pop(item, 0)) {
        handle_item(item);
      } else if (const auto next = sim_.next_event_time()) {
        clock_.advance_to(*next / scale);
      } else if (ring_.pop(item, 20)) {
        handle_item(item);
      }
      continue;
    }
    // Real time: sleep on the ring until the next sim event is due (or
    // a short heartbeat so shutdown is noticed promptly).
    int timeout_ms = 100;
    if (const auto next = sim_.next_event_time()) {
      const double wait_s = *next / scale - clock_.now();
      timeout_ms = std::clamp(static_cast<int>(wait_s * 1000.0) + 1, 0, 100);
    }
    if (ring_.pop(item, timeout_ms)) handle_item(item);
  }

  // Teardown, in drain order: stop new connections, answer what is
  // already in the ring, fast-forward the simulator until the front-end
  // holds no unfinished work, then tear the transport down.
  ::shutdown(listen_fd_, SHUT_RDWR);
  while (ring_.pop(item, 10)) handle_item(item);
  front_.stop_reaper();
  while (!front_.quiescent()) {
    const auto next = sim_.next_event_time();
    if (!next) break;  // defensive: unfinished work must have events
    sim_.run_until(*next);
  }
  {
    std::lock_guard<std::mutex> lk(readers_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lk(readers_mu_);
    for (std::thread& t : readers_) {
      if (t.joinable()) t.join();
    }
    readers_.clear();
  }
  while (ring_.pop(item, 0)) handle_item(item);  // pending EOFs close fds
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (config_.socket_path[0] != '@') ::unlink(config_.socket_path.c_str());
  return requests_handled_;
}

}  // namespace gridvc::frontend
