#include "frontend/wire.hpp"

#include <sstream>

#include "common/error.hpp"
#include "obs/profile_io.hpp"

namespace gridvc::frontend {

namespace {

std::string err(const std::string& message) {
  return "{\"ok\":false,\"error\":\"" + message + "\"}";
}

std::string fmt_double(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

const obs::Json& field(const obs::Json& req, const std::string& key) {
  const obs::Json* v = req.get(key);
  if (v == nullptr) throw ParseError("missing field '" + key + "'");
  return *v;
}

double num_field(const obs::Json& req, const std::string& key) {
  const obs::Json& v = field(req, key);
  if (v.type != obs::Json::Type::kNumber) {
    throw ParseError("field '" + key + "' must be a number");
  }
  return v.number;
}

std::uint64_t id_field(const obs::Json& req, const std::string& key) {
  return static_cast<std::uint64_t>(num_field(req, key));
}

std::string str_field(const obs::Json& req, const std::string& key) {
  const obs::Json& v = field(req, key);
  if (v.type != obs::Json::Type::kString) {
    throw ParseError("field '" + key + "' must be a string");
  }
  return v.str;
}

}  // namespace

const char* ticket_state_name(TicketState state) {
  switch (state) {
    case TicketState::kQueued: return "queued";
    case TicketState::kDispatched: return "dispatched";
    case TicketState::kDone: return "done";
    case TicketState::kShed: return "shed";
    case TicketState::kCancelled: return "cancelled";
  }
  return "unknown";
}

const char* task_state_name(gridftp::TaskState state) {
  switch (state) {
    case gridftp::TaskState::kQueued: return "queued";
    case gridftp::TaskState::kActive: return "active";
    case gridftp::TaskState::kSucceeded: return "succeeded";
    case gridftp::TaskState::kCancelled: return "cancelled";
    case gridftp::TaskState::kShed: return "shed";
  }
  return "unknown";
}

WireResult handle_wire_line(WireContext& ctx, const std::string& line) {
  WireResult out;
  try {
    const obs::Json req = obs::parse_json(line);
    if (req.type != obs::Json::Type::kObject) {
      out.response = err("request must be a JSON object");
      return out;
    }
    const std::string op = str_field(req, "op");
    std::ostringstream res;

    if (op == "ping") {
      res << "{\"ok\":true,\"time\":" << fmt_double(ctx.sim.now()) << "}";
    } else if (op == "connect") {
      const std::uint64_t session = ctx.front.connect(str_field(req, "tenant"));
      out.opened_session = session;
      res << "{\"ok\":true,\"session\":" << session << "}";
    } else if (op == "disconnect") {
      const std::uint64_t session = id_field(req, "session");
      ctx.front.disconnect(session);
      out.closed_session = session;
      res << "{\"ok\":true}";
    } else if (op == "submit") {
      const std::uint64_t session = id_field(req, "session");
      const obs::Json& files_json = field(req, "files");
      if (files_json.type != obs::Json::Type::kArray) {
        out.response = err("field 'files' must be an array of byte sizes");
        return out;
      }
      std::vector<Bytes> files;
      files.reserve(files_json.array.size());
      for (const obs::Json& f : files_json.array) {
        if (f.type != obs::Json::Type::kNumber || f.number <= 0) {
          out.response = err("files entries must be positive byte counts");
          return out;
        }
        files.push_back(static_cast<Bytes>(f.number));
      }
      gridftp::SubmitOptions opts;
      if (req.get("priority") != nullptr) {
        opts.priority = static_cast<int>(num_field(req, "priority"));
      }
      if (req.get("deadline") != nullptr) {
        opts.deadline = num_field(req, "deadline");
      }
      const std::string key =
          req.get("key") != nullptr ? str_field(req, "key") : "";
      const std::string label =
          req.get("label") != nullptr ? str_field(req, "label") : "wire";
      const SubmitResult r = ctx.front.submit(
          session, label, std::move(files), ctx.transfer_template, opts, key);
      if (r.accepted) {
        res << "{\"ok\":true,\"ticket\":" << r.ticket;
        if (r.duplicate) res << ",\"duplicate\":true";
        res << "}";
      } else {
        res << "{\"ok\":false,\"rejected\":true,\"reason\":\""
            << reject_reason_name(r.reason)
            << "\",\"retry_after\":" << fmt_double(r.retry_after) << "}";
      }
    } else if (op == "poll") {
      const TicketStatus st =
          ctx.front.poll(id_field(req, "session"), id_field(req, "ticket"));
      res << "{\"ok\":true,\"state\":\"" << ticket_state_name(st.state)
          << "\",\"bytes_total\":" << st.bytes_total
          << ",\"bytes_done\":" << st.bytes_done;
      if (st.state == TicketState::kDone) {
        res << ",\"task_state\":\"" << task_state_name(st.task_state) << "\"";
      }
      res << "}";
    } else if (op == "cancel") {
      const bool changed =
          ctx.front.cancel(id_field(req, "session"), id_field(req, "ticket"));
      res << "{\"ok\":true,\"cancelled\":" << (changed ? "true" : "false")
          << "}";
    } else if (op == "stats") {
      const TenantStats st = ctx.front.tenant_stats(str_field(req, "tenant"));
      res << "{\"ok\":true,\"submitted\":" << st.submitted
          << ",\"accepted\":" << st.accepted << ",\"rejected\":" << st.rejected
          << ",\"shed\":" << st.shed << ",\"dispatched\":" << st.dispatched
          << ",\"completed\":" << st.completed << ",\"queued\":" << st.queued
          << ",\"queued_bytes\":" << st.queued_bytes
          << ",\"in_flight\":" << st.in_flight << "}";
    } else {
      out.response = err("unknown op '" + op + "'");
      return out;
    }
    out.response = res.str();
  } catch (const std::exception& e) {
    out.response = err(e.what());
    out.opened_session.reset();
    out.closed_session.reset();
  }
  return out;
}

}  // namespace gridvc::frontend
