// Wall-clock daemon: the admission front-end as a long-running process.
//
// Everything below the front-end is a discrete-event simulation; the
// daemon glues it to real clients. Threading follows the classic
// receiver/handler split (one message loop owns all state, I/O threads
// only produce):
//
//   accept thread     blocking accept() on a unix-domain socket; spawns
//                     one reader thread per connection.
//   reader threads    split the connection's byte stream into lines and
//                     push {connection, line} into a *bounded* ring.
//                     When the ring is full the push blocks — the TCP
//                     buffer and then the client stall, which is the
//                     transport-level backpressure story: an overloaded
//                     daemon slows readers before it drops work.
//   handler loop      (Daemon::run, caller's thread) alternates between
//                     advancing the simulator to the wall-clock-mapped
//                     sim time and executing ring items against the
//                     wire protocol. The only thread that touches the
//                     simulator, the front-end, or writes to sockets.
//
// Time mapping: sim_time = clock.now() * time_scale. With a
// SteadyWallClock the handler sleeps until the next sim event is due or
// a request arrives; with a TestWallClock it jumps the clock to the
// next deadline instead, replaying hours of sim time in milliseconds
// through the very same loop (the CI smoke runs this way).
//
// Shutdown: SIGTERM (or request_shutdown()) stops the accept loop,
// drains the ring, runs the simulator until the front-end is quiescent
// (no queued tickets, no in-flight work), disarms the idle reaper, and
// returns. Clean drain is asserted by tests/cli_daemon_smoke.cmake.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "frontend/wall_clock.hpp"
#include "frontend/wire.hpp"

namespace gridvc::frontend {

/// Bounded MPSC queue between reader threads and the handler loop.
/// push() blocks while full (producer backpressure); pop() waits up to
/// a timeout so the handler can interleave sim work and notice
/// shutdown without a wakeup channel.
class RequestRing {
 public:
  struct Item {
    int connection = -1;
    std::string line;
    bool eof = false;  ///< connection closed; line is empty
  };

  explicit RequestRing(std::size_t capacity);
  void push(Item item);
  bool pop(Item& out, int timeout_ms);
  std::size_t depth() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Item> items_;
  std::size_t capacity_;
};

struct DaemonConfig {
  /// Unix-domain socket path. A leading '@' selects the Linux abstract
  /// namespace (no filesystem entry, no unlink bookkeeping).
  std::string socket_path;
  /// Sim seconds per wall second (real clocks only; a virtual clock
  /// already moves in sim-deadline jumps).
  double time_scale = 1.0;
  std::size_t ring_capacity = 256;
  /// Server-side transfer template (endpoints are configuration, not
  /// client input).
  gridftp::TransferSpec transfer_template;
};

class Daemon {
 public:
  /// The simulator, front-end, and clock must outlive the daemon.
  Daemon(sim::Simulator& sim, FrontEnd& front, WallClock& clock,
         DaemonConfig config);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Bind, listen, serve. Blocks until shutdown is requested and the
  /// front-end has drained. Returns the number of requests handled.
  std::uint64_t run();

  /// Ask run() to wind down (thread-safe; also set by the SIGTERM
  /// handler installed via install_sigterm_handler).
  void request_shutdown() { shutdown_.store(true); }
  bool shutdown_requested() const;

  /// Route SIGTERM/SIGINT into the shutdown flag via sigaction (the
  /// handler only sets a process-wide sig_atomic_t that every Daemon's
  /// shutdown_requested() observes).
  static void install_sigterm_handler();

 private:
  void accept_loop();
  void reader_loop(int connection);
  void handle_item(const RequestRing::Item& item);
  void drop_connection(int connection);
  bool drained() const;

  sim::Simulator& sim_;
  FrontEnd& front_;
  WallClock& clock_;
  DaemonConfig config_;
  WireContext wire_;
  RequestRing ring_;
  std::atomic<bool> shutdown_{false};
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::mutex readers_mu_;
  std::vector<std::thread> readers_;
  std::vector<int> conn_fds_;  ///< accepted connections (readers_mu_)
  /// Sessions opened per connection, so EOF disconnects them (handler
  /// thread only).
  std::map<int, std::vector<std::uint64_t>> connection_sessions_;
  std::uint64_t requests_handled_ = 0;
};

}  // namespace gridvc::frontend
