// Multi-tenant admission front-end (work-queue style) for the managed
// transfer service.
//
// The TransferService (§V's hosted successor to hand-rolled GridFTP
// scripts) trusts its callers: anyone can submit, the bounded queue is
// shared, and one greedy client starves the rest. This layer is the
// front door a real hosted service puts in front of that core: clients
// open *sessions*, submissions are accounted to *tenants* with explicit
// quotas (submission-rate token buckets, queued-bytes and in-flight
// caps), accepted work waits in per-tenant queues and is dispatched into
// the backend's active slots by weighted deficit round-robin, and
// refusals carry a retry-after hint so well-behaved clients back off
// instead of hammering.
//
// Invariants the chaos harness enforces (see workload/chaos.cpp):
//   - isolation: backpressure shedding only ever victimises a tenant
//     holding *more* than its weight-proportional fair share of the
//     global queued-bytes budget (isolation_violations() == 0);
//   - no starvation: a tenant with backlog and free in-flight quota is
//     served within its deficit-round-robin bound — it never waits more
//     than ceil(max_ticket_bytes / quantum_bytes(tenant)) + 1 full
//     rotations while lower-priority backlog drains
//     (starvation_violations() == 0).
//
// Everything runs in sim time on the owning Simulator; the wall-clock
// daemon (frontend/daemon.hpp) maps real time onto it.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "gridftp/transfer_service.hpp"
#include "recovery/circuit_breaker.hpp"
#include "sim/simulator.hpp"

namespace gridvc::frontend {

/// Per-tenant admission contract. Zero means "unlimited" for every
/// quota knob, so a default-constructed tenant is admitted freely and
/// only weighted fairness applies.
struct TenantConfig {
  /// Unique tenant tag; forwarded to TransferService as
  /// SubmitOptions::tenant, so no spaces and not "-" (journal token).
  std::string name;
  /// Deficit-round-robin share; must be > 0. A weight-2 tenant drains
  /// twice the bytes per rotation of a weight-1 tenant.
  double weight = 1.0;
  /// Token-bucket submission rate limit, submissions/sec (0 = none).
  double submit_rate = 0.0;
  /// Token-bucket capacity (burst size); floor of 1 is applied.
  double submit_burst = 8.0;
  /// Max tickets dispatched-but-unfinished in the backend (0 = none).
  std::size_t max_in_flight = 0;
  /// Cap on bytes waiting in this tenant's front queue (0 = none).
  Bytes max_queued_bytes = 0;
  /// Cap on tickets waiting in this tenant's front queue (0 = none).
  std::size_t queue_limit = 0;
  /// What a full per-tenant queue does to the *incoming* submission:
  /// kRejectNew refuses it, kShedOldest evicts the tenant's oldest
  /// queued ticket, kPriority evicts the tenant's lowest-(priority, id)
  /// ticket when the incoming one strictly outranks it (FIFO within a
  /// priority level, same contract as the backend policy).
  gridftp::OverloadPolicy policy = gridftp::OverloadPolicy::kRejectNew;
};

struct FrontEndConfig {
  std::vector<TenantConfig> tenants;  ///< at least one
  /// Sessions idle longer than this are reaped (closed) by a periodic
  /// sweep; 0 disables reaping. Any successful submit/poll/cancel
  /// refreshes the session's activity clock.
  Seconds session_idle_timeout = 0.0;
  Seconds reap_interval = 30.0;
  /// Global backpressure threshold on bytes queued across all tenants
  /// (0 = none). An in-quota submission that would breach it sheds
  /// queued work from over-fair-share tenants, lowest weight first; if
  /// no tenant is over its share the incoming submission is refused
  /// with a retry-after hint instead.
  Bytes global_queued_bytes_limit = 0;
  /// Bytes of deficit granted per unit weight per DRR rotation.
  Bytes drr_quantum = 64ull * 1024 * 1024;
  /// Disconnect semantics for unfinished work: false (default) adopts
  /// orphans — queued tickets still dispatch and in-flight tasks run to
  /// completion, they just can no longer be polled; true aborts them
  /// (queued tickets are cancelled, in-flight backend tasks cancelled).
  bool abort_on_disconnect = false;
  /// Scale for queue-depth-derived retry-after hints (seconds).
  Seconds retry_after_base = 5.0;
  /// Optional control-plane health feed: while the breaker is open,
  /// every submission is refused with retry_after = time till the
  /// half-open probe. Non-owning; may be null.
  recovery::CircuitBreaker* breaker = nullptr;
};

/// Why a submission was refused (kFrontReject value2 / wire "reason").
enum class RejectReason : std::uint8_t {
  kRateLimited = 0,   ///< token bucket empty
  kQueueFull = 1,     ///< per-tenant queue_limit, policy refused entry
  kQuotaBytes = 2,    ///< per-tenant max_queued_bytes would be exceeded
  kBackpressure = 3,  ///< global queued-bytes limit, no sheddable victim
  kBreakerOpen = 4,   ///< control-plane circuit breaker is open
};

const char* reject_reason_name(RejectReason reason);

/// Why a queued ticket was shed by the front-end (kFrontShed aux).
enum class FrontShedReason : std::uint8_t {
  kQueueFullEvicted = 0,  ///< per-tenant policy evicted it for a newcomer
  kBackpressureShed = 1,  ///< global limit reclaimed from an over-share tenant
  kDisconnectAborted = 2, ///< session closed with abort_on_disconnect
};

struct SubmitResult {
  bool accepted = false;
  /// True when an idempotency key matched a previous submission; `ticket`
  /// is the original ticket and no new work was created.
  bool duplicate = false;
  std::uint64_t ticket = 0;
  RejectReason reason = RejectReason::kRateLimited;  ///< valid when !accepted
  /// Backpressure hint: seconds the client should wait before retrying.
  Seconds retry_after = 0.0;  ///< valid when !accepted
};

enum class TicketState : std::uint8_t {
  kQueued,      ///< accepted, waiting in the tenant's front queue
  kDispatched,  ///< handed to the backend, task running or backend-queued
  kDone,        ///< backend task reached a terminal state
  kShed,        ///< shed by the front-end while queued (never dispatched)
  kCancelled,   ///< cancelled by the client while queued
};

struct TicketStatus {
  std::uint64_t ticket = 0;
  std::uint64_t session = 0;
  std::string tenant;
  TicketState state = TicketState::kQueued;
  /// Backend task id; valid from kDispatched on.
  std::uint64_t task_id = 0;
  Bytes bytes_total = 0;
  Bytes bytes_done = 0;  ///< live backend progress once dispatched
  /// Terminal backend state; valid when state == kDone.
  gridftp::TaskState task_state = gridftp::TaskState::kQueued;
  Seconds submitted_at = 0.0;
  Seconds dispatched_at = 0.0;
  Seconds finished_at = 0.0;
};

/// Live per-tenant accounting snapshot.
struct TenantStats {
  std::uint64_t submitted = 0;   ///< submit() calls, duplicates excluded
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;    ///< all RejectReasons
  std::uint64_t shed = 0;        ///< queued tickets shed by the front-end
  std::uint64_t dispatched = 0;
  std::uint64_t completed = 0;   ///< backend terminal, whatever the state
  std::uint64_t cancelled = 0;   ///< client cancels of queued tickets
  std::size_t queued = 0;        ///< current front-queue depth
  Bytes queued_bytes = 0;
  std::size_t in_flight = 0;     ///< dispatched, backend not yet terminal
};

/// The admission front-end. Owns client sessions, per-tenant queues and
/// quotas, and the DRR dispatcher that feeds the backend service. The
/// backend should be configured with queue_limit = 0 (unbounded): the
/// front-end only dispatches into free active slots, so the backend
/// queue stays empty and all waiting happens where fairness is enforced.
class FrontEnd {
 public:
  FrontEnd(sim::Simulator& sim, gridftp::TransferService& service,
           FrontEndConfig config);
  FrontEnd(const FrontEnd&) = delete;
  FrontEnd& operator=(const FrontEnd&) = delete;

  /// Open a session for `tenant` (must name a configured tenant; throws
  /// NotFoundError otherwise). Returns the session id.
  std::uint64_t connect(const std::string& tenant);

  /// Submit a batch of files through `session`. Applies, in order: the
  /// breaker gate, the tenant's token bucket, the queued-bytes quota,
  /// the per-tenant queue limit (policy may evict a queued ticket), and
  /// global backpressure (may shed an over-share tenant's ticket). On
  /// acceptance the ticket waits in the tenant's queue until the DRR
  /// dispatcher finds it a backend slot. `idempotency_key`, when
  /// non-empty, dedupes retries within the session: a repeat returns the
  /// original ticket with duplicate = true and is charged nothing.
  /// `on_done`, if set, fires when the backend task reaches a terminal
  /// state (never for tickets shed or cancelled before dispatch).
  /// Throws NotFoundError for unknown or closed sessions.
  SubmitResult submit(std::uint64_t session, std::string label,
                      std::vector<Bytes> files,
                      gridftp::TransferSpec transfer_template,
                      const gridftp::SubmitOptions& options = {},
                      const std::string& idempotency_key = "",
                      gridftp::TransferService::TaskDoneFn on_done = nullptr);

  /// Status of a ticket owned by `session`; refreshes the session's
  /// activity clock. Throws NotFoundError for unknown/closed sessions
  /// and for tickets the session does not own.
  TicketStatus poll(std::uint64_t session, std::uint64_t ticket);

  /// Cancel a ticket: queued tickets leave the front queue and never
  /// dispatch (state kCancelled); dispatched tickets forward to
  /// TransferService::cancel. Returns whether anything changed. Throws
  /// like poll().
  bool cancel(std::uint64_t session, std::uint64_t ticket);

  /// Close a session. Unfinished work is adopted or aborted per
  /// FrontEndConfig::abort_on_disconnect. Idempotent on closed sessions;
  /// throws NotFoundError for ids never issued.
  void disconnect(std::uint64_t session);

  /// Ticket status without a session (operator tooling; no activity
  /// refresh, works for tickets of closed sessions).
  TicketStatus status(std::uint64_t ticket) const;

  /// Per-tenant accounting. Throws NotFoundError for unknown names.
  TenantStats tenant_stats(const std::string& tenant) const;
  std::vector<TenantConfig> tenants() const;

  std::size_t sessions_open() const { return sessions_open_; }
  std::uint64_t sessions_reaped() const { return sessions_reaped_; }
  std::size_t queued_tickets() const { return total_queued_; }
  Bytes queued_bytes() const { return total_queued_bytes_; }
  std::size_t in_flight() const { return total_in_flight_; }

  /// Fairness-contract violation counters; both must stay 0 (chaos
  /// invariants). Non-zero means the implementation broke its own
  /// isolation / no-starvation guarantees, not that clients misbehaved.
  std::uint64_t isolation_violations() const { return isolation_violations_; }
  std::uint64_t starvation_violations() const { return starvation_violations_; }

  /// True when no front-queued tickets and no dispatched-but-unfinished
  /// work remain (sessions may still be open). The daemon drains on
  /// SIGTERM by running the sim until quiescent().
  bool quiescent() const { return total_queued_ == 0 && total_in_flight_ == 0; }

  /// Cancel the idle-reap timer so a drained simulator can go idle.
  /// connect() re-arms it. Used by the daemon's shutdown path.
  void stop_reaper();

 private:
  struct TokenBucket {
    double tokens = 0.0;
    Seconds last_refill = 0.0;
  };

  struct Ticket {
    TicketStatus status;
    std::string label;
    std::vector<Bytes> files;
    gridftp::TransferSpec transfer_template;
    gridftp::SubmitOptions options;
    gridftp::TransferService::TaskDoneFn on_done;
    std::uint32_t tenant_idx = 0;
  };

  struct Session {
    std::uint32_t tenant_idx = 0;
    bool open = true;
    Seconds last_activity = 0.0;
    std::vector<std::uint64_t> tickets;  ///< issued to this session, in order
    std::map<std::string, std::uint64_t> idempotency;  ///< key -> ticket
  };

  struct TenantRt {
    TenantConfig cfg;
    TokenBucket bucket;
    std::deque<std::uint64_t> queue;  ///< ticket ids, FIFO
    double deficit = 0.0;             ///< DRR deficit, bytes
    Bytes queued_bytes = 0;
    std::size_t in_flight = 0;
    /// Consecutive DRR visits that granted deficit but dispatched
    /// nothing while this tenant had eligible backlog; bounded by the
    /// no-starvation contract.
    std::uint64_t rotations_waited = 0;
    TenantStats stats;
    obs::MetricId id_submitted, id_accepted, id_rejected, id_shed,
        id_dispatched, id_completed;
    obs::MetricId id_queued_gauge, id_queued_bytes_gauge, id_in_flight_gauge;
    obs::MetricId id_queue_wait_hist;
  };

  Session& checked_session(std::uint64_t session);
  TenantRt& tenant_rt(std::uint32_t idx) { return tenants_[idx]; }
  Bytes ticket_bytes(const Ticket& t) const;
  Seconds backpressure_hint(const TenantRt& t) const;
  void refill_bucket(TenantRt& t);
  SubmitResult reject(TenantRt& t, std::uint64_t session, RejectReason reason,
                      Seconds retry_after);
  std::uint64_t accept_ticket(TenantRt& t, Session& s,
                              std::uint64_t session_id, Ticket ticket);
  /// Remove `ticket` from its tenant's front queue and mark it `state`
  /// (kShed with `reason`, or kCancelled). Updates gauges and totals.
  void drop_queued(std::uint64_t ticket, TicketState state,
                   FrontShedReason reason);
  /// Evict per the tenant's own overload policy to admit `incoming_pri`;
  /// returns false when the policy says the incoming submission loses.
  bool evict_for(TenantRt& t, int incoming_pri);
  /// Shed from over-fair-share tenants (lowest weight first) until
  /// `needed` more bytes fit under the global limit; returns false if no
  /// eligible victim remains.
  bool reclaim_global(Bytes needed, std::uint32_t submitter_idx);
  bool backend_has_capacity() const;
  void pump();
  void dispatch(std::uint64_t ticket_id);
  void on_backend_done(std::uint64_t ticket_id,
                       const gridftp::TaskStatus& status);
  void close_session(std::uint64_t session_id, Session& s,
                     std::uint64_t close_reason);
  void arm_reaper();
  bool reap_idle();
  void sync_tenant_gauges(TenantRt& t);

  sim::Simulator& sim_;
  gridftp::TransferService& service_;
  FrontEndConfig config_;
  std::vector<TenantRt> tenants_;
  std::map<std::string, std::uint32_t> tenant_index_;
  std::map<std::uint64_t, Session> sessions_;
  std::map<std::uint64_t, Ticket> tickets_;
  std::uint64_t next_session_ = 1;
  std::uint64_t next_ticket_ = 1;
  std::size_t sessions_open_ = 0;
  std::uint64_t sessions_reaped_ = 0;
  std::size_t total_queued_ = 0;
  Bytes total_queued_bytes_ = 0;
  std::size_t total_in_flight_ = 0;
  std::uint64_t isolation_violations_ = 0;
  std::uint64_t starvation_violations_ = 0;
  /// Largest single-ticket byte size ever queued; feeds the starvation
  /// bound (a ticket can wait at most ceil(max/quantum) deficit grants).
  Bytes max_ticket_bytes_ = 0;
  std::uint32_t cursor_ = 0;  ///< DRR rotation position (tenant index)
  /// Set while the cursor tenant holds deficit from an interrupted visit
  /// (backend ran out of slots mid-burst); the next pump resumes that
  /// visit without granting a second quantum.
  bool mid_visit_ = false;
  bool pumping_ = false;
  sim::EventHandle reaper_;
  obs::MetricId id_sessions_open_gauge_;
  obs::MetricId id_sessions_reaped_;
  obs::MetricId id_rejections_;
  obs::MetricId id_backpressure_sheds_;
  obs::MetricId id_queued_gauge_;
  obs::MetricId id_queued_bytes_gauge_;
};

}  // namespace gridvc::frontend
