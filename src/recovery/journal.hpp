// Write-ahead journal: the in-sim durable store behind crash recovery.
//
// Reservation-based transfer systems must not lose queued work or granted
// circuits when the controlling process dies (the paper's §II restart
// markers recover *data*; this journal recovers *control state*). The
// model is a single append-only log shared by any number of logical
// streams ("task", "vc", ...): a subsystem appends one opaque payload per
// durable object keyed by (stream, key), re-appends on every meaningful
// state change, and writes a tombstone when the object reaches a terminal
// state. Recovery replays a stream with last-write-wins per key, which is
// exactly the redo pass of a conventional WAL — no undo is needed because
// payloads are full snapshots, not deltas.
//
// The journal survives the crash of the subsystem that writes it, not of
// the whole simulation: callers own it *outside* the component they
// crash/restart (see TransferService::crash_and_recover, Idc journaling).
// It is deliberately sim-free and deterministic: no timestamps of its
// own, iteration in append order, replay in key order.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace gridvc::recovery {

struct JournalRecord {
  std::string stream;   ///< logical stream, e.g. "task" or "vc"
  std::uint64_t key = 0;
  std::string payload;  ///< full-state snapshot, encoding owned by the writer
  bool tombstone = false;

  bool operator==(const JournalRecord&) const = default;
};

class Journal {
 public:
  /// Append a full-state snapshot for (stream, key). Later appends for
  /// the same pair supersede earlier ones at replay.
  void append(const std::string& stream, std::uint64_t key, std::string payload);

  /// Mark (stream, key) terminal: replay will skip it.
  void tombstone(const std::string& stream, std::uint64_t key);

  /// Surviving records of one stream: last write per key wins, tombstoned
  /// keys are dropped, results in ascending key order.
  std::vector<JournalRecord> replay(const std::string& stream) const;

  /// Raw log length, superseded and tombstoned records included.
  std::size_t size() const { return log_.size(); }

  /// Drop superseded and tombstoned records in place, keeping exactly the
  /// records replay() would return (all streams). Returns how many
  /// records were discarded.
  std::size_t compact();

  struct Stats {
    std::uint64_t appends = 0;
    std::uint64_t tombstones = 0;
    std::uint64_t compactions = 0;
    std::uint64_t records_dropped = 0;  ///< total discarded by compact()
  };
  const Stats& stats() const { return stats_; }

 private:
  std::vector<JournalRecord> log_;
  Stats stats_;
};

}  // namespace gridvc::recovery
