#include "recovery/fault_schedule.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "common/error.hpp"
#include "exec/rng_stream.hpp"

namespace gridvc::recovery {

namespace {

/// Stable stream index per (kind, target): kinds get disjoint ranges so a
/// schedule's link processes never shift when server/idc processes are
/// enabled or disabled.
std::uint64_t stream_index(FaultTargetKind kind, std::uint64_t target) {
  switch (kind) {
    case FaultTargetKind::kLink:
      return 0x10000u + target;
    case FaultTargetKind::kServer:
      return 0x20000u + target;
    case FaultTargetKind::kIdc:
      return 0x30000u;
  }
  return 0;
}

void walk_process(std::vector<FaultWindow>& out, FaultTargetKind kind,
                  std::uint64_t target, Seconds mtbf, Seconds mttr, Seconds start_after,
                  Seconds horizon, std::uint64_t seed) {
  if (mtbf <= 0.0) return;
  GRIDVC_REQUIRE(mttr > 0.0, "fault schedule mttr must be positive");
  Rng rng = exec::stream_rng(seed, stream_index(kind, target));
  Seconds t = start_after;
  while (true) {
    t += rng.exponential(mtbf);
    if (t >= horizon) return;
    const Seconds outage = std::max(1e-6, rng.exponential(mttr));
    out.push_back({kind, target, t, t + outage});
    t += outage;
  }
}

bool window_order(const FaultWindow& a, const FaultWindow& b) {
  return std::tie(a.down_at, a.kind, a.target, a.up_at) <
         std::tie(b.down_at, b.kind, b.target, b.up_at);
}

}  // namespace

std::size_t FaultSchedule::count(FaultTargetKind kind) const {
  return static_cast<std::size_t>(
      std::count_if(windows.begin(), windows.end(),
                    [kind](const FaultWindow& w) { return w.kind == kind; }));
}

FaultSchedule generate_fault_schedule(const FaultScheduleSpec& spec, std::uint64_t seed) {
  GRIDVC_REQUIRE(spec.horizon > spec.start_after,
                 "fault schedule horizon must lie past start_after");
  FaultSchedule schedule;
  for (std::size_t i = 0; i < spec.link_count; ++i) {
    walk_process(schedule.windows, FaultTargetKind::kLink, i, spec.link_mtbf,
                 spec.link_mttr, spec.start_after, spec.horizon, seed);
  }
  for (std::size_t i = 0; i < spec.server_count; ++i) {
    walk_process(schedule.windows, FaultTargetKind::kServer, i, spec.server_mtbf,
                 spec.server_mttr, spec.start_after, spec.horizon, seed);
  }
  if (spec.idc) {
    walk_process(schedule.windows, FaultTargetKind::kIdc, 0, spec.idc_mtbf,
                 spec.idc_mttr, spec.start_after, spec.horizon, seed);
  }
  std::sort(schedule.windows.begin(), schedule.windows.end(), window_order);
  return schedule;
}

FaultScheduleInjector::FaultScheduleInjector(sim::Simulator& sim, FaultSchedule schedule,
                                             FaultFn on_down, FaultFn on_up)
    : sim_(sim),
      schedule_(std::move(schedule)),
      on_down_(std::move(on_down)),
      on_up_(std::move(on_up)) {
  // Overlapping windows on one target would double-fail it and then heal
  // it while the second outage is still meant to hold; reject them.
  std::map<std::pair<FaultTargetKind, std::uint64_t>, Seconds> last_up;
  std::vector<FaultWindow> sorted = schedule_.windows;
  std::sort(sorted.begin(), sorted.end(), window_order);
  for (const FaultWindow& w : sorted) {
    GRIDVC_REQUIRE(w.up_at > w.down_at, "fault window must have positive duration");
    GRIDVC_REQUIRE(w.down_at >= 0.0, "fault window cannot start before time 0");
    auto& prev_up = last_up[{w.kind, w.target}];
    GRIDVC_REQUIRE(w.down_at >= prev_up, "fault windows overlap on one target");
    prev_up = w.up_at;
  }

  pending_.reserve(schedule_.windows.size() * 2);
  for (const FaultWindow& w : schedule_.windows) {
    pending_.push_back(sim_.schedule_at(w.down_at, [this, w] {
      ++stats_.downs;
      if (on_down_) on_down_(w.kind, w.target);
    }));
    pending_.push_back(sim_.schedule_at(w.up_at, [this, w] {
      ++stats_.ups;
      if (on_up_) on_up_(w.kind, w.target);
    }));
  }
}

FaultScheduleInjector::~FaultScheduleInjector() {
  for (sim::EventHandle& h : pending_) h.cancel();
}

FaultSchedule shrink_schedule(const FaultSchedule& failing,
                              const std::function<bool(const FaultSchedule&)>& still_fails) {
  GRIDVC_REQUIRE(still_fails(failing), "shrink input must be a failing schedule");
  std::vector<FaultWindow> current = failing.windows;

  // ddmin: delete progressively smaller chunks; on success restart at the
  // coarsest granularity. Terminates because every accepted deletion
  // strictly shrinks the list.
  std::size_t chunk = std::max<std::size_t>(1, current.size() / 2);
  while (!current.empty()) {
    bool removed_any = false;
    for (std::size_t start = 0; start < current.size();) {
      const std::size_t len = std::min(chunk, current.size() - start);
      std::vector<FaultWindow> candidate;
      candidate.reserve(current.size() - len);
      candidate.insert(candidate.end(), current.begin(),
                       current.begin() + static_cast<std::ptrdiff_t>(start));
      candidate.insert(candidate.end(),
                       current.begin() + static_cast<std::ptrdiff_t>(start + len),
                       current.end());
      if (still_fails({candidate})) {
        current = std::move(candidate);
        removed_any = true;
        // keep `start` in place: the next chunk has shifted into it
      } else {
        start += len;
      }
    }
    if (removed_any) {
      chunk = std::max<std::size_t>(1, current.size() / 2);
      continue;
    }
    if (chunk == 1) break;  // 1-minimal: no single window can go
    chunk = std::max<std::size_t>(1, chunk / 2);
  }
  return {current};
}

}  // namespace gridvc::recovery
