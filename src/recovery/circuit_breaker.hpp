// Client-side circuit breaker for a flaky control-plane dependency.
//
// The IDC's signaling interface can be *down* (an outage window), and a
// client that keeps re-signaling into a dead controller both wastes its
// bounded retry budget and hammers the controller the moment it returns.
// The standard remedy is the closed/open/half-open breaker:
//
//   closed    requests flow; `failure_threshold` consecutive failures trip
//             the breaker.
//   open      requests fail fast (no attempt made) until `open_duration`
//             has elapsed since the trip.
//   half-open exactly one probe request is let through; success (possibly
//             several, per `success_threshold`) closes the breaker, a
//             failure re-opens it and restarts the open timer.
//
// The breaker is pure state over caller-supplied times (sim seconds), so
// it is deterministic and needs no simulator of its own.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace gridvc::recovery {

struct CircuitBreakerConfig {
  /// Consecutive failures (while closed) that trip the breaker.
  int failure_threshold = 3;
  /// How long the breaker stays open before admitting a half-open probe.
  Seconds open_duration = 30.0;
  /// Consecutive half-open successes required to close again.
  int success_threshold = 1;
};

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };

class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerConfig config = {});

  /// May a request be attempted at `now`? In the open state this fails
  /// fast; in the half-open state exactly one in-flight probe is allowed —
  /// further allow() calls fail fast until the probe reports back via
  /// record_success/record_failure.
  bool allow(Seconds now);

  /// Report the outcome of an attempted (allowed) request.
  void record_success(Seconds now);
  void record_failure(Seconds now);

  /// State as of `now` (open lazily becomes half-open once the open
  /// window has elapsed).
  BreakerState state(Seconds now) const;

  /// Earliest time an open breaker admits its half-open probe. Callers
  /// scheduling a retry can sleep until here instead of polling allow().
  /// Meaningful only while open; returns 0 when not open.
  Seconds reopen_at() const;

  struct Stats {
    std::uint64_t trips = 0;          ///< closed/half-open -> open transitions
    std::uint64_t fast_failures = 0;  ///< allow() == false
    std::uint64_t probes = 0;         ///< half-open attempts admitted
    std::uint64_t closes = 0;         ///< half-open -> closed transitions
  };
  const Stats& stats() const { return stats_; }

 private:
  void trip(Seconds now);

  CircuitBreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  Seconds opened_at_ = 0.0;
  int consecutive_failures_ = 0;
  int half_open_successes_ = 0;
  bool probe_in_flight_ = false;
  Stats stats_;
};

}  // namespace gridvc::recovery
