// Deterministic multi-layer fault schedules for the chaos harness.
//
// net::FaultInjector draws failure/repair times online from a shared RNG,
// which is fine for one fault process but wrong for chaos testing: a
// failing run must be *replayable and shrinkable*, which requires the
// whole fault plan to exist as data before the run starts. A
// FaultSchedule is that data — a sorted list of down/up windows over
// three target kinds (link, server, IDC) — generated from
// exec::stream_rng streams so every (kind, target) process is independent
// of the others and of thread count.
//
// The FaultScheduleInjector pre-schedules one down and one up event per
// window; *what* a fault means is the caller's wiring (the chaos scenario
// maps link windows to Network::set_link_state + Idc::handle_link_failure,
// server windows to Server::set_online + TransferEngine crash handling,
// IDC windows to outage begin/end).
//
// shrink_schedule() is ddmin over the window list: given a predicate
// "this schedule still fails", it deletes chunks, then single windows,
// until no single window can be removed — the classic 1-minimal repro.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/units.hpp"
#include "sim/simulator.hpp"

namespace gridvc::recovery {

enum class FaultTargetKind : std::uint8_t { kLink, kServer, kIdc };

/// One outage window on one target. Windows of the same (kind, target)
/// never overlap in a generated schedule.
struct FaultWindow {
  FaultTargetKind kind = FaultTargetKind::kLink;
  std::uint64_t target = 0;  ///< link id / server index / ignored for kIdc
  Seconds down_at = 0.0;
  Seconds up_at = 0.0;  ///< may lie past the horizon: every fault heals

  friend bool operator==(const FaultWindow&, const FaultWindow&) = default;
};

struct FaultSchedule {
  std::vector<FaultWindow> windows;  ///< sorted by (down_at, kind, target)

  std::size_t count(FaultTargetKind kind) const;
};

/// Per-kind exponential MTBF/MTTR processes; mtbf <= 0 disables a kind.
struct FaultScheduleSpec {
  std::size_t link_count = 0;    ///< link targets are 0 .. link_count-1
  std::size_t server_count = 0;  ///< server targets are 0 .. server_count-1
  bool idc = false;              ///< include an IDC outage process
  Seconds start_after = 0.0;     ///< no failures before this time
  Seconds horizon = 1800.0;      ///< no failures at or after this time
  Seconds link_mtbf = 0.0;
  Seconds link_mttr = 30.0;
  Seconds server_mtbf = 0.0;
  Seconds server_mttr = 60.0;
  Seconds idc_mtbf = 0.0;
  Seconds idc_mttr = 60.0;
};

/// Generate the full schedule for (spec, seed). Each (kind, target)
/// process draws from its own exec::stream_rng stream, so adding or
/// removing a kind never shifts another kind's windows.
FaultSchedule generate_fault_schedule(const FaultScheduleSpec& spec, std::uint64_t seed);

/// Replays a FaultSchedule against caller-supplied down/up callbacks.
/// All events are scheduled at construction; destruction cancels any
/// that have not fired yet, so the injector may die before the run ends.
class FaultScheduleInjector {
 public:
  using FaultFn = std::function<void(FaultTargetKind, std::uint64_t target)>;

  /// Requires per-target windows to be non-overlapping (generated
  /// schedules and their shrunk subsets always are).
  FaultScheduleInjector(sim::Simulator& sim, FaultSchedule schedule, FaultFn on_down,
                        FaultFn on_up);
  ~FaultScheduleInjector();
  FaultScheduleInjector(const FaultScheduleInjector&) = delete;
  FaultScheduleInjector& operator=(const FaultScheduleInjector&) = delete;

  struct Stats {
    std::uint64_t downs = 0;
    std::uint64_t ups = 0;
  };
  const Stats& stats() const { return stats_; }
  const FaultSchedule& schedule() const { return schedule_; }

 private:
  sim::Simulator& sim_;
  FaultSchedule schedule_;
  FaultFn on_down_;
  FaultFn on_up_;
  Stats stats_;
  std::vector<sim::EventHandle> pending_;
};

/// ddmin over `failing.windows`: returns a 1-minimal schedule for which
/// `still_fails` holds (removing any single remaining window makes the
/// failure disappear). `still_fails(failing)` must be true on entry.
/// Deterministic: the reduction order depends only on the input.
FaultSchedule shrink_schedule(const FaultSchedule& failing,
                              const std::function<bool(const FaultSchedule&)>& still_fails);

}  // namespace gridvc::recovery
