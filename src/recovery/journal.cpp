#include "recovery/journal.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "obs/profiler.hpp"

namespace gridvc::recovery {

void Journal::append(const std::string& stream, std::uint64_t key, std::string payload) {
  GRIDVC_REQUIRE(!stream.empty(), "journal stream needs a name");
  log_.push_back({stream, key, std::move(payload), false});
  ++stats_.appends;
}

void Journal::tombstone(const std::string& stream, std::uint64_t key) {
  GRIDVC_REQUIRE(!stream.empty(), "journal stream needs a name");
  log_.push_back({stream, key, std::string(), true});
  ++stats_.tombstones;
}

std::vector<JournalRecord> Journal::replay(const std::string& stream) const {
  GRIDVC_PROF_ZONE("recovery.journal_replay");
  // Redo pass: walk in append order so the last write per key wins, then
  // emit survivors in key order (std::map iteration) for deterministic
  // reconstruction order.
  std::map<std::uint64_t, const JournalRecord*> latest;
  for (const JournalRecord& rec : log_) {
    if (rec.stream != stream) continue;
    if (rec.tombstone) {
      latest.erase(rec.key);
    } else {
      latest[rec.key] = &rec;
    }
  }
  std::vector<JournalRecord> out;
  out.reserve(latest.size());
  for (const auto& [key, rec] : latest) out.push_back(*rec);
  return out;
}

std::size_t Journal::compact() {
  // Keep exactly the records replay() would return for every stream:
  // the last non-tombstoned write per (stream, key).
  std::map<std::pair<std::string, std::uint64_t>, std::size_t> latest;
  for (std::size_t i = 0; i < log_.size(); ++i) {
    const JournalRecord& rec = log_[i];
    if (rec.tombstone) {
      latest.erase({rec.stream, rec.key});
    } else {
      latest[{rec.stream, rec.key}] = i;
    }
  }
  std::vector<bool> keep(log_.size(), false);
  for (const auto& [key, index] : latest) keep[index] = true;

  std::vector<JournalRecord> compacted;
  compacted.reserve(latest.size());
  for (std::size_t i = 0; i < log_.size(); ++i) {
    if (keep[i]) compacted.push_back(std::move(log_[i]));
  }
  const std::size_t dropped = log_.size() - compacted.size();
  log_ = std::move(compacted);
  ++stats_.compactions;
  stats_.records_dropped += dropped;
  return dropped;
}

}  // namespace gridvc::recovery
