#include "recovery/circuit_breaker.hpp"

#include "common/error.hpp"

namespace gridvc::recovery {

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config) : config_(config) {
  GRIDVC_REQUIRE(config_.failure_threshold >= 1, "breaker needs a failure threshold >= 1");
  GRIDVC_REQUIRE(config_.open_duration > 0.0, "breaker open duration must be positive");
  GRIDVC_REQUIRE(config_.success_threshold >= 1, "breaker needs a success threshold >= 1");
}

BreakerState CircuitBreaker::state(Seconds now) const {
  if (state_ == BreakerState::kOpen && now >= opened_at_ + config_.open_duration) {
    return BreakerState::kHalfOpen;
  }
  return state_;
}

Seconds CircuitBreaker::reopen_at() const {
  return state_ == BreakerState::kOpen ? opened_at_ + config_.open_duration : 0.0;
}

void CircuitBreaker::trip(Seconds now) {
  state_ = BreakerState::kOpen;
  opened_at_ = now;
  consecutive_failures_ = 0;
  half_open_successes_ = 0;
  probe_in_flight_ = false;
  ++stats_.trips;
}

bool CircuitBreaker::allow(Seconds now) {
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now < opened_at_ + config_.open_duration) {
        ++stats_.fast_failures;
        return false;
      }
      // The open window elapsed: transition to half-open and admit the
      // first probe.
      state_ = BreakerState::kHalfOpen;
      half_open_successes_ = 0;
      probe_in_flight_ = true;
      ++stats_.probes;
      return true;
    case BreakerState::kHalfOpen:
      if (probe_in_flight_) {
        ++stats_.fast_failures;
        return false;
      }
      probe_in_flight_ = true;
      ++stats_.probes;
      return true;
  }
  return false;  // unreachable
}

void CircuitBreaker::record_success(Seconds now) {
  (void)now;
  switch (state_) {
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      return;
    case BreakerState::kOpen:
      // A success reported while open can only be a late-completing
      // request from before the trip; it does not close the breaker.
      return;
    case BreakerState::kHalfOpen:
      probe_in_flight_ = false;
      if (++half_open_successes_ >= config_.success_threshold) {
        state_ = BreakerState::kClosed;
        consecutive_failures_ = 0;
        ++stats_.closes;
      }
      return;
  }
}

void CircuitBreaker::record_failure(Seconds now) {
  switch (state_) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= config_.failure_threshold) trip(now);
      return;
    case BreakerState::kOpen:
      return;  // late failure from before the trip; the timer keeps running
    case BreakerState::kHalfOpen:
      trip(now);  // the probe failed: back to open, restart the timer
      return;
  }
}

}  // namespace gridvc::recovery
