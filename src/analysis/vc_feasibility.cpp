#include "analysis/vc_feasibility.hpp"

#include <cmath>

#include "common/error.hpp"
#include "exec/thread_pool.hpp"
#include "stats/quantile.hpp"

namespace gridvc::analysis {

FeasibilityResult analyze_vc_feasibility(const std::vector<Session>& sessions,
                                         const gridftp::TransferLog& log,
                                         const FeasibilityOptions& options) {
  GRIDVC_REQUIRE(options.setup_delay >= 0.0, "negative setup delay");
  GRIDVC_REQUIRE(options.overhead_fraction > 0.0 && options.overhead_fraction <= 1.0,
                 "overhead fraction must be in (0, 1]");
  GRIDVC_REQUIRE(!log.empty(), "feasibility analysis of an empty log");

  FeasibilityResult result;
  std::vector<double> tputs;
  tputs.reserve(log.size());
  for (const auto& r : log) tputs.push_back(r.throughput());
  result.reference_throughput = stats::quantile(tputs, options.throughput_quantile);
  GRIDVC_REQUIRE(result.reference_throughput > 0.0,
                 "reference throughput is zero; log has degenerate durations");

  // Session qualifies iff its hypothetical duration (bytes / T_ref) is at
  // least setup_delay / overhead_fraction, i.e. its size is at least:
  const Seconds min_duration = options.setup_delay / options.overhead_fraction;
  result.min_suitable_size =
      static_cast<Bytes>(std::ceil(min_duration * result.reference_throughput / 8.0));

  result.total_sessions = sessions.size();
  result.total_transfers = 0;
  for (const auto& s : sessions) {
    result.total_transfers += s.transfer_count();
    if (s.total_bytes >= result.min_suitable_size) {
      ++result.suitable_sessions;
      result.suitable_transfers += s.transfer_count();
    }
  }
  return result;
}

std::vector<SuitabilityCell> suitability_sweep(const gridftp::TransferLog& log,
                                               const std::vector<SuitabilityPoint>& points,
                                               const FeasibilityOptions& base) {
  // Each cell regroups and reanalyzes from scratch, so cells share no
  // state: parallel_map preserves input order and the per-cell work is
  // deterministic, making the sweep thread-count independent. Nested
  // parallel constructs inside (group_sessions, quantile) degrade to
  // inline serial execution on the worker lanes.
  return exec::default_pool().parallel_map<SuitabilityCell>(
      points.size(), [&](std::size_t i) {
        SuitabilityCell cell;
        cell.point = points[i];
        GroupingOptions grouping;
        grouping.gap = points[i].gap;
        const std::vector<Session> sessions = group_sessions(log, grouping);
        cell.session_count = sessions.size();
        FeasibilityOptions options = base;
        options.setup_delay = points[i].setup_delay;
        cell.feasibility = analyze_vc_feasibility(sessions, log, options);
        return cell;
      });
}

}  // namespace gridvc::analysis
