#include "analysis/concurrency.hpp"

#include <algorithm>
#include <set>

#include "common/error.hpp"
#include "stats/quantile.hpp"

namespace gridvc::analysis {

std::vector<ConcurrencyInterval> concurrency_timeline(const gridftp::TransferLog& all,
                                                      std::size_t index) {
  GRIDVC_REQUIRE(index < all.size(), "transfer index out of range");
  const auto& target = all[index];
  const Seconds t0 = target.start_time;
  const Seconds t1 = target.end_time();
  GRIDVC_REQUIRE(t1 > t0, "target transfer has non-positive duration");

  // Event boundaries: every overlapping transfer's start/end clipped to
  // [t0, t1].
  std::set<Seconds> boundaries{t0, t1};
  for (const auto& r : all) {
    if (r.end_time() <= t0 || r.start_time >= t1) continue;
    if (r.start_time > t0) boundaries.insert(r.start_time);
    if (r.end_time() < t1) boundaries.insert(r.end_time());
  }

  std::vector<ConcurrencyInterval> timeline;
  auto it = boundaries.begin();
  Seconds prev = *it;
  for (++it; it != boundaries.end(); ++it) {
    const Seconds mid = 0.5 * (prev + *it);
    ConcurrencyInterval interval;
    interval.start = prev;
    interval.duration = *it - prev;
    for (const auto& r : all) {
      if (r.start_time <= mid && mid < r.end_time()) {
        ++interval.concurrent;
        interval.concurrent_throughput_sum += r.throughput();
      }
    }
    timeline.push_back(interval);
    prev = *it;
  }
  return timeline;
}

ConcurrencyPrediction predict_throughput(const gridftp::TransferLog& all,
                                         const std::vector<std::size_t>& targets,
                                         const ConcurrencyOptions& options) {
  GRIDVC_REQUIRE(!targets.empty(), "concurrency prediction needs targets");

  ConcurrencyPrediction out;
  out.actual.reserve(targets.size());
  for (std::size_t idx : targets) {
    GRIDVC_REQUIRE(idx < all.size(), "target index out of range");
    GRIDVC_REQUIRE(all[idx].duration > 0.0, "target with non-positive duration");
    out.actual.push_back(all[idx].throughput());
  }

  if (options.fixed_r > 0.0) {
    out.r = options.fixed_r;
  } else {
    GRIDVC_REQUIRE(options.r_quantile > 0.0 && options.r_quantile <= 1.0,
                   "R quantile out of range");
    out.r = stats::quantile(out.actual, options.r_quantile);
  }

  out.predicted.reserve(targets.size());
  for (std::size_t t = 0; t < targets.size(); ++t) {
    const std::size_t idx = targets[t];
    const auto timeline = concurrency_timeline(all, idx);
    const Seconds duration = all[idx].duration;
    // Eq. (2): t̂_i = Σ_j (R − Σ_k t_k) · d_ij / D_i — in each interval the
    // transfer is predicted to receive the server ceiling R minus the
    // recorded throughput the *other* concurrent transfers consume,
    // time-averaged over the transfer's duration. Negative residuals
    // (ceiling oversubscribed) clamp to zero.
    const double own = all[idx].throughput();
    double weighted = 0.0;
    for (const auto& interval : timeline) {
      const double others = std::max(0.0, interval.concurrent_throughput_sum - own);
      weighted += std::max(0.0, out.r - others) * interval.duration;
    }
    out.predicted.push_back(weighted / duration);
  }

  out.rho = stats::pearson(out.predicted, out.actual);
  const auto per_quartile =
      stats::correlate_by_quartile(out.predicted, out.actual, out.actual);
  out.rho_by_quartile = per_quartile.by_quartile;
  return out;
}

}  // namespace gridvc::analysis
