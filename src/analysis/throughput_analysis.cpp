#include "analysis/throughput_analysis.hpp"

#include <vector>

#include "common/error.hpp"

namespace gridvc::analysis {

stats::Summary throughput_summary_mbps(const gridftp::TransferLog& log) {
  GRIDVC_REQUIRE(!log.empty(), "throughput summary of an empty log");
  return stats::summarize(gridftp::throughputs_mbps(log));
}

stats::Summary duration_summary_seconds(const gridftp::TransferLog& log) {
  GRIDVC_REQUIRE(!log.empty(), "duration summary of an empty log");
  return stats::summarize(gridftp::durations_seconds(log));
}

gridftp::TransferLog filter_by_size(const gridftp::TransferLog& log, Bytes lo, Bytes hi) {
  GRIDVC_REQUIRE(lo < hi, "size filter range inverted");
  gridftp::TransferLog out;
  for (const auto& r : log) {
    if (r.size >= lo && r.size < hi) out.push_back(r);
  }
  return out;
}

gridftp::TransferLog filter(const gridftp::TransferLog& log,
                            const std::function<bool(const gridftp::TransferRecord&)>& pred) {
  GRIDVC_REQUIRE(pred != nullptr, "null filter predicate");
  gridftp::TransferLog out;
  for (const auto& r : log) {
    if (pred(r)) out.push_back(r);
  }
  return out;
}

std::map<int, stats::Summary> throughput_by_stripes(const gridftp::TransferLog& log,
                                                    std::size_t min_count) {
  std::map<int, std::vector<double>> groups;
  for (const auto& r : log) groups[r.stripes].push_back(to_mbps(r.throughput()));
  std::map<int, stats::Summary> out;
  for (const auto& [stripes, values] : groups) {
    if (values.size() < min_count) continue;
    out.emplace(stripes, stats::summarize(values));
  }
  return out;
}

std::map<int, stats::Summary> throughput_by_year(const gridftp::TransferLog& log,
                                                 const YearOf& year_of,
                                                 std::size_t min_count) {
  GRIDVC_REQUIRE(year_of != nullptr, "null year mapping");
  std::map<int, std::vector<double>> groups;
  for (const auto& r : log) groups[year_of(r.start_time)].push_back(to_mbps(r.throughput()));
  std::map<int, stats::Summary> out;
  for (const auto& [year, values] : groups) {
    if (values.size() < min_count) continue;
    out.emplace(year, stats::summarize(values));
  }
  return out;
}

}  // namespace gridvc::analysis
