// Dynamic-VC suitability methodology (§VI-A, Table IV).
//
// The paper's question: "for what percentage of the sessions would the VC
// setup delay overhead represent one-tenth or less of session durations if
// the session throughput is assumed to be as high as the third-quartile
// throughput across all transfers?"
//
// Method, exactly as published:
//   1. reference throughput T_ref = Q3 of per-transfer throughput;
//   2. hypothetical session duration D̂ = session bytes / T_ref
//      (deliberately optimistic: real durations are longer, so a session
//      judged long enough under D̂ certainly is in practice);
//   3. session suitable iff setup_delay <= overhead_fraction · D̂
//      (overhead_fraction = 1/10 in the paper);
//   4. report the suitable fraction of sessions and — because large
//      sessions hold most files — the fraction of *transfers* contained
//      in suitable sessions (the parenthesized numbers of Table IV).
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/session_grouping.hpp"
#include "common/units.hpp"
#include "gridftp/transfer_log.hpp"

namespace gridvc::analysis {

struct FeasibilityOptions {
  /// VC setup delay to amortize (the paper uses 1 min and 50 ms).
  Seconds setup_delay = 60.0;
  /// Maximum tolerable setup overhead as a fraction of session duration.
  double overhead_fraction = 0.1;
  /// Which quantile of transfer throughput to use as the optimistic
  /// session rate (the paper uses the third quartile).
  double throughput_quantile = 0.75;
};

struct FeasibilityResult {
  std::size_t suitable_sessions = 0;
  std::size_t total_sessions = 0;
  std::size_t suitable_transfers = 0;
  std::size_t total_transfers = 0;
  /// The reference throughput used (bits/s).
  BitsPerSecond reference_throughput = 0.0;
  /// Smallest session size (bytes) that qualifies under these options —
  /// the paper's "sessions of sizes 42 MB or larger" observation.
  Bytes min_suitable_size = 0;

  double session_fraction() const {
    return total_sessions > 0
               ? static_cast<double>(suitable_sessions) / static_cast<double>(total_sessions)
               : 0.0;
  }
  double transfer_fraction() const {
    return total_transfers > 0 ? static_cast<double>(suitable_transfers) /
                                     static_cast<double>(total_transfers)
                               : 0.0;
  }
};

/// Run the Table IV methodology over `sessions` grouped from `log`.
FeasibilityResult analyze_vc_feasibility(const std::vector<Session>& sessions,
                                         const gridftp::TransferLog& log,
                                         const FeasibilityOptions& options);

/// One (session gap g, VC setup delay) parameter point of a Table IV-style
/// sweep over the suitability methodology.
struct SuitabilityPoint {
  Seconds gap = 3600.0;
  Seconds setup_delay = 60.0;
};

struct SuitabilityCell {
  SuitabilityPoint point;
  std::size_t session_count = 0;
  FeasibilityResult feasibility;
};

/// Evaluate the Table IV methodology at every parameter point: group the
/// log with the point's gap, then analyze with the point's setup delay
/// (other knobs come from `base`). Points are independent, so they run on
/// the execution pool concurrently; results are returned in input order
/// and are byte-identical at any thread count.
std::vector<SuitabilityCell> suitability_sweep(const gridftp::TransferLog& log,
                                               const std::vector<SuitabilityPoint>& points,
                                               const FeasibilityOptions& base = {});

}  // namespace gridvc::analysis
