#include "analysis/session_grouping.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "common/error.hpp"
#include "exec/thread_pool.hpp"

namespace gridvc::analysis {

namespace {

// Below this size the serial path wins; above it the per-partition sort
// and sweep dominate and parallelize cleanly. The cut only moves work
// between identical code paths — the output is the same either way.
constexpr std::size_t kParallelGroupingThreshold = 4096;

}  // namespace

std::vector<Session> group_sessions(const gridftp::TransferLog& log,
                                    const GroupingOptions& options) {
  GRIDVC_REQUIRE(options.gap >= 0.0, "session gap must be non-negative");

  // Partition by endpoint-pair key (serial: the map keeps keys ordered,
  // and indices within a partition stay in log order).
  std::map<std::string, std::vector<std::size_t>> partitions;
  for (std::size_t i = 0; i < log.size(); ++i) {
    const auto& r = log[i];
    std::string key = r.server_host + "|" + r.remote_host;
    if (options.split_by_direction) {
      key += r.type == gridftp::TransferType::kStore ? "|STOR" : "|RETR";
    }
    partitions[key].push_back(i);
  }

  // Sort and sweep each partition independently — in parallel for large
  // logs — then concatenate in key order. Each partition's sessions
  // depend only on that partition, so the merge order (and therefore the
  // output) is independent of the thread count.
  std::vector<std::pair<const std::string*, std::vector<std::size_t>*>> parts;
  parts.reserve(partitions.size());
  for (auto& [key, indices] : partitions) parts.emplace_back(&key, &indices);

  std::vector<std::vector<Session>> per_part(parts.size());
  const auto sweep_partition = [&](std::size_t p) {
    const std::string& key = *parts[p].first;
    std::vector<std::size_t>& indices = *parts[p].second;
    std::sort(indices.begin(), indices.end(), [&](std::size_t a, std::size_t b) {
      if (log[a].start_time != log[b].start_time) {
        return log[a].start_time < log[b].start_time;
      }
      return log[a].end_time() < log[b].end_time();
    });

    std::vector<Session>& out = per_part[p];
    Session* current = nullptr;
    for (std::size_t idx : indices) {
      const auto& r = log[idx];
      // A transfer starting within `gap` of the running end (which may be
      // before this start for concurrent batches -> negative gap) joins.
      if (current != nullptr && r.start_time - current->end_time <= options.gap) {
        current->transfer_indices.push_back(idx);
        current->total_bytes += r.size;
        current->end_time = std::max(current->end_time, r.end_time());
      } else {
        Session s;
        s.key = key;
        s.transfer_indices.push_back(idx);
        s.total_bytes = r.size;
        s.start_time = r.start_time;
        s.end_time = r.end_time();
        out.push_back(std::move(s));
        current = &out.back();
      }
    }
  };

  if (log.size() >= kParallelGroupingThreshold && parts.size() > 1) {
    exec::default_pool().parallel_for(parts.size(), sweep_partition);
  } else {
    for (std::size_t p = 0; p < parts.size(); ++p) sweep_partition(p);
  }

  std::size_t total = 0;
  for (const auto& v : per_part) total += v.size();
  std::vector<Session> sessions;
  sessions.reserve(total);
  for (auto& v : per_part) {
    for (auto& s : v) sessions.push_back(std::move(s));
  }

  std::sort(sessions.begin(), sessions.end(), [](const Session& a, const Session& b) {
    if (a.start_time != b.start_time) return a.start_time < b.start_time;
    return a.key < b.key;
  });
  return sessions;
}

SessionCensus census(const std::vector<Session>& sessions) {
  SessionCensus c;
  std::size_t le2 = 0;
  for (const auto& s : sessions) {
    const std::size_t n = s.transfer_count();
    if (n == 1) {
      ++c.single_transfer_sessions;
    } else {
      ++c.multi_transfer_sessions;
    }
    if (n <= 2) ++le2;
    c.max_transfers_in_session = std::max(c.max_transfers_in_session, n);
    if (n >= 100) ++c.sessions_with_100_or_more;
  }
  c.fraction_with_le2 =
      sessions.empty() ? 0.0
                       : static_cast<double>(le2) / static_cast<double>(sessions.size());
  return c;
}

std::vector<double> session_sizes_megabytes(const std::vector<Session>& sessions) {
  std::vector<double> out;
  out.reserve(sessions.size());
  for (const auto& s : sessions) out.push_back(to_megabytes(s.total_bytes));
  return out;
}

std::vector<double> session_durations_seconds(const std::vector<Session>& sessions) {
  std::vector<double> out;
  out.reserve(sessions.size());
  for (const auto& s : sessions) out.push_back(s.duration());
  return out;
}

}  // namespace gridvc::analysis
