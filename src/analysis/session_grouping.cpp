#include "analysis/session_grouping.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace gridvc::analysis {

std::vector<Session> group_sessions(const gridftp::TransferLog& log,
                                    const GroupingOptions& options) {
  GRIDVC_REQUIRE(options.gap >= 0.0, "session gap must be non-negative");

  // Partition by endpoint-pair key.
  std::map<std::string, std::vector<std::size_t>> partitions;
  for (std::size_t i = 0; i < log.size(); ++i) {
    const auto& r = log[i];
    std::string key = r.server_host + "|" + r.remote_host;
    if (options.split_by_direction) {
      key += r.type == gridftp::TransferType::kStore ? "|STOR" : "|RETR";
    }
    partitions[key].push_back(i);
  }

  std::vector<Session> sessions;
  for (auto& [key, indices] : partitions) {
    std::sort(indices.begin(), indices.end(), [&](std::size_t a, std::size_t b) {
      if (log[a].start_time != log[b].start_time) {
        return log[a].start_time < log[b].start_time;
      }
      return log[a].end_time() < log[b].end_time();
    });

    Session* current = nullptr;
    for (std::size_t idx : indices) {
      const auto& r = log[idx];
      // A transfer starting within `gap` of the running end (which may be
      // before this start for concurrent batches -> negative gap) joins.
      if (current != nullptr && r.start_time - current->end_time <= options.gap) {
        current->transfer_indices.push_back(idx);
        current->total_bytes += r.size;
        current->end_time = std::max(current->end_time, r.end_time());
      } else {
        Session s;
        s.key = key;
        s.transfer_indices.push_back(idx);
        s.total_bytes = r.size;
        s.start_time = r.start_time;
        s.end_time = r.end_time();
        sessions.push_back(std::move(s));
        current = &sessions.back();
      }
    }
  }

  std::sort(sessions.begin(), sessions.end(), [](const Session& a, const Session& b) {
    if (a.start_time != b.start_time) return a.start_time < b.start_time;
    return a.key < b.key;
  });
  return sessions;
}

SessionCensus census(const std::vector<Session>& sessions) {
  SessionCensus c;
  std::size_t le2 = 0;
  for (const auto& s : sessions) {
    const std::size_t n = s.transfer_count();
    if (n == 1) {
      ++c.single_transfer_sessions;
    } else {
      ++c.multi_transfer_sessions;
    }
    if (n <= 2) ++le2;
    c.max_transfers_in_session = std::max(c.max_transfers_in_session, n);
    if (n >= 100) ++c.sessions_with_100_or_more;
  }
  c.fraction_with_le2 =
      sessions.empty() ? 0.0
                       : static_cast<double>(le2) / static_cast<double>(sessions.size());
  return c;
}

std::vector<double> session_sizes_megabytes(const std::vector<Session>& sessions) {
  std::vector<double> out;
  out.reserve(sessions.size());
  for (const auto& s : sessions) out.push_back(to_megabytes(s.total_bytes));
  return out;
}

std::vector<double> session_durations_seconds(const std::vector<Session>& sessions) {
  std::vector<double> out;
  out.reserve(sessions.size());
  for (const auto& s : sessions) out.push_back(s.duration());
  return out;
}

}  // namespace gridvc::analysis
