// Parallel-TCP-stream factor analysis (§VII-B, Figs 3-5).
//
// "transfers were divided, based on their size, into bins. For transfers
// of size [0 GB, 1 GB], the bin size is chosen to be 1 MB, while for
// transfers of size (1 GB, 4 GB], the bin size is chosen to be 100 MB …
// partition the transfers in each file size bin into two groups:
// (i) 1-stream transfers and (ii) 8-stream transfers. The median
// throughput is computed for each group for each file size bin."
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"
#include "gridftp/transfer_log.hpp"
#include "stats/binning.hpp"

namespace gridvc::analysis {

/// One group's per-bin median series plus observation counts (Fig 5).
struct StreamSeries {
  int streams = 0;
  std::vector<stats::BinnedMedianPoint> points;  ///< median Mbps per bin
};

struct StreamComparison {
  StreamSeries group_a;  ///< e.g. 1-stream
  StreamSeries group_b;  ///< e.g. 8-stream
  /// Transfers that matched neither stream count.
  std::size_t unmatched = 0;
};

struct StreamAnalysisOptions {
  int streams_a = 1;
  int streams_b = 8;
  /// Bins with fewer observations than this are omitted from the series
  /// (the paper flags 1-stream bins under ~300 observations as
  /// unrepresentative).
  std::size_t min_bin_count = 1;
  /// Restrict to sizes below this bound (paper scheme covers (0, 4 GiB]).
  Bytes max_size = 4 * GiB;
};

/// Bin transfers with the paper's scheme and compare median throughput of
/// the two stream groups per bin.
StreamComparison compare_streams(const gridftp::TransferLog& log,
                                 const StreamAnalysisOptions& options = {});

/// The size (MiB) above which the two groups' medians differ by at most
/// `tolerance` (relative) for every subsequent populated bin — the
/// "crossover" after which stream count stops mattering. Returns -1 when
/// the groups never converge.
double convergence_size_mb(const StreamComparison& cmp, double tolerance = 0.15);

}  // namespace gridvc::analysis
