#include "analysis/rate_advisor.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "stats/quantile.hpp"

namespace gridvc::analysis {

RateAdvisor::RateAdvisor(const gridftp::TransferLog& history, RateAdvisorConfig config)
    : config_(config) {
  GRIDVC_REQUIRE(!history.empty(), "advisor needs a transfer history");
  GRIDVC_REQUIRE(config_.size_band > 1.0, "size band must exceed 1");
  GRIDVC_REQUIRE(config_.min_samples >= 2, "need at least two samples to advise");
  GRIDVC_REQUIRE(config_.rate_quantile > 0.0 && config_.rate_quantile < 1.0,
                 "rate quantile out of range");
  for (const auto& r : history) {
    if (r.duration <= 0.0) continue;
    const Sample s{static_cast<double>(r.size), r.throughput()};
    by_config_[{r.streams, r.stripes}].push_back(s);
    pooled_.push_back(s);
  }
  const auto by_size = [](const Sample& a, const Sample& b) { return a.size < b.size; };
  for (auto& [key, samples] : by_config_) {
    std::sort(samples.begin(), samples.end(), by_size);
  }
  std::sort(pooled_.begin(), pooled_.end(), by_size);
}

std::vector<double> RateAdvisor::band(const std::vector<Sample>& sorted, double lo,
                                      double hi) {
  const auto by_size = [](const Sample& a, double v) { return a.size < v; };
  const auto begin = std::lower_bound(sorted.begin(), sorted.end(), lo, by_size);
  auto it = begin;
  std::vector<double> out;
  while (it != sorted.end() && it->size <= hi) {
    out.push_back(it->throughput);
    ++it;
  }
  return out;
}

std::optional<CircuitAdvice> RateAdvisor::advise(const AdviceRequest& request) const {
  GRIDVC_REQUIRE(request.size > 0, "advice needs a transfer size");
  GRIDVC_REQUIRE(request.confidence > 0.0 && request.confidence < 1.0,
                 "confidence must be in (0, 1)");

  const double lo = static_cast<double>(request.size) / config_.size_band;
  const double hi = static_cast<double>(request.size) * config_.size_band;

  // Pass 1: same configuration, same size class. Pass 2: same size class
  // only (pooled). Pass 3: everything (last resort).
  std::vector<double> matched;
  bool fallback = false;
  const auto cit = by_config_.find({request.streams, request.stripes});
  if (cit != by_config_.end()) matched = band(cit->second, lo, hi);
  if (matched.size() < config_.min_samples) {
    fallback = true;
    matched = band(pooled_, lo, hi);
    if (matched.size() < config_.min_samples) {
      matched.clear();
      matched.reserve(pooled_.size());
      for (const auto& s : pooled_) matched.push_back(s.throughput);
    }
  }
  if (matched.size() < 2) return std::nullopt;

  CircuitAdvice advice;
  advice.sample_size = matched.size();
  advice.fallback = fallback;
  advice.rate = stats::quantile(matched, config_.rate_quantile);
  // Duration such that a (1 - confidence) low-quantile realization still
  // finishes: size over the pessimistic throughput.
  const double pessimistic =
      std::max(stats::quantile(matched, 1.0 - request.confidence), 1.0);
  advice.duration = static_cast<double>(request.size) * 8.0 / pessimistic;
  return advice;
}

}  // namespace gridvc::analysis
