// SNMP link-utilization factor analysis (§VII-C, eq. (1), Tables X-XIII).
//
// "The start and end times of the GridFTP transfers will typically not
// align with the 30-sec SNMP time bins … the total number of bytes
// transferred on link L during the i-th GridFTP transfer is computed"
// by pro-rating the first and last overlapping bins by their overlap
// with [s_i, s_i + D_i] and taking the interior bins whole — eq. (1).
//
// From the attributed bytes B_i this module derives:
//   * correlation of GridFTP transfer bytes with B_i per router, per
//     throughput quartile (Table XI — high: α flows dominate);
//   * correlation of GridFTP bytes with the *other* traffic B_i − bytes_i
//     (Table XII — low: the rest of the traffic neither tracks nor
//     disturbs the transfers);
//   * average link load B_i / D_i during each transfer (Table XIII).
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"
#include "gridftp/transfer_log.hpp"
#include "net/snmp.hpp"
#include "stats/correlation.hpp"
#include "stats/summary.hpp"

namespace gridvc::analysis {

/// Eq. (1): bytes carried by the monitored link during [start,
/// start+duration), assembled from 30-s bins with pro-rated edge bins.
/// Bins before the series' first bin or after its last contribute zero.
double attributed_bytes(const net::SnmpSeries& series, Seconds start, Seconds duration);

/// B_i for every transfer in `log` against one link's series.
std::vector<double> attributed_bytes_per_transfer(const net::SnmpSeries& series,
                                                  const gridftp::TransferLog& log);

/// Per-router correlation analysis for one monitored link.
struct LinkCorrelation {
  /// corr(GridFTP bytes, B_i) — overall and per throughput quartile.
  stats::QuartileCorrelation gridftp_vs_total;
  /// corr(GridFTP bytes, B_i - GridFTP bytes) — the "remaining traffic".
  stats::QuartileCorrelation gridftp_vs_other;
  /// Average link load B_i / D_i during each transfer, Gbps.
  stats::Summary load_gbps;
};

/// Run the full §VII-C analysis of `log` against one link's SNMP series.
/// Requires a non-empty log.
LinkCorrelation correlate_link(const net::SnmpSeries& series,
                               const gridftp::TransferLog& log);

/// Same analysis from precomputed per-transfer attributed bytes B_i
/// (used when transfers take direction-dependent interfaces, as the
/// paper's STOR/RETR mix does). Requires total_bytes.size() == log.size()
/// and a non-empty log.
LinkCorrelation correlate_attributed(const std::vector<double>& total_bytes,
                                     const gridftp::TransferLog& log);

}  // namespace gridvc::analysis
