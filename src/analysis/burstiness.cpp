#include "analysis/burstiness.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gridvc::analysis {

double SessionRateProfile::peak() const {
  double best = 0.0;
  for (double r : rate_bps) best = std::max(best, r);
  return best;
}

double SessionRateProfile::mean() const {
  if (rate_bps.empty()) return 0.0;
  double sum = 0.0;
  for (double r : rate_bps) sum += r;
  return sum / static_cast<double>(rate_bps.size());
}

double SessionRateProfile::burstiness() const {
  const double m = mean();
  return m > 0.0 ? peak() / m : 0.0;
}

SessionRateProfile session_rate_profile(const gridftp::TransferLog& log,
                                        const Session& session, Seconds window) {
  GRIDVC_REQUIRE(window > 0.0, "window must be positive");
  GRIDVC_REQUIRE(session.duration() > 0.0, "session has no duration");

  SessionRateProfile profile;
  profile.window = window;
  profile.start = session.start_time;
  const std::size_t bins = static_cast<std::size_t>(
      std::ceil(session.duration() / window));
  profile.rate_bps.assign(std::max<std::size_t>(bins, 1), 0.0);

  for (std::size_t idx : session.transfer_indices) {
    GRIDVC_REQUIRE(idx < log.size(), "session references a missing transfer");
    const auto& r = log[idx];
    if (r.duration <= 0.0) continue;
    const double rate = r.throughput();
    // Spread the transfer's bytes over the windows it overlaps,
    // pro-rating edge windows by overlap (the eq.(1) discipline applied
    // in reverse).
    const Seconds t0 = r.start_time;
    const Seconds t1 = r.end_time();
    for (std::size_t b = 0; b < profile.rate_bps.size(); ++b) {
      const Seconds w0 = profile.start + static_cast<double>(b) * window;
      const Seconds w1 = w0 + window;
      const Seconds overlap = std::min(w1, t1) - std::max(w0, t0);
      if (overlap <= 0.0) continue;
      profile.rate_bps[b] += rate * overlap / window;
    }
  }
  return profile;
}

std::vector<double> session_burstiness(const gridftp::TransferLog& log,
                                       const std::vector<Session>& sessions,
                                       Seconds window) {
  std::vector<double> out;
  out.reserve(sessions.size());
  for (const auto& s : sessions) {
    if (s.duration() <= window) {
      out.push_back(1.0);
      continue;
    }
    out.push_back(session_rate_profile(log, s, window).burstiness());
  }
  return out;
}

}  // namespace gridvc::analysis
