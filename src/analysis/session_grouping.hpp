// Session grouping — the paper's central preprocessing step (§V).
//
// "The term session refers to multiple transfers executed in batch mode by
// an automated script. A configurable parameter, g, is used to set the
// maximum allowed gap between the end of one transfer and the start of the
// next transfer within a session. The gap … could be negative as multiple
// transfers can be started concurrently. Such transfers are part of the
// same session."
//
// Transfers are first partitioned by endpoint-pair key (logging server +
// remote host, optionally + direction), then each partition is swept in
// start-time order: a transfer extends the current session when its start
// is within `gap` of the session's running end (max end time seen so
// far); otherwise it opens a new session.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "gridftp/transfer_log.hpp"

namespace gridvc::analysis {

struct Session {
  /// Partition key this session belongs to.
  std::string key;
  /// Indices into the source TransferLog, in start-time order.
  std::vector<std::size_t> transfer_indices;
  Bytes total_bytes = 0;
  Seconds start_time = 0.0;  ///< first transfer's start
  Seconds end_time = 0.0;    ///< latest transfer end

  std::size_t transfer_count() const { return transfer_indices.size(); }
  Seconds duration() const { return end_time - start_time; }
  /// Effective session rate: total bytes over wall-clock duration.
  BitsPerSecond effective_rate() const { return achieved_rate(total_bytes, duration()); }
};

struct GroupingOptions {
  /// Maximum allowed gap g between one transfer's end and the next's start.
  Seconds gap = 60.0;
  /// Include the transfer direction in the partition key (off by default:
  /// a mixed STOR/RETR batch to one host is one session, as in the paper).
  bool split_by_direction = false;
};

/// Group a log into sessions. The log need not be pre-sorted. Transfers
/// with an empty remote_host all share one partition per server — callers
/// replicating the NERSC situation should treat such grouping as
/// unreliable (the paper could not group NERSC data).
std::vector<Session> group_sessions(const gridftp::TransferLog& log,
                                    const GroupingOptions& options);

/// Table III's row: session-population shape under one g value.
struct SessionCensus {
  std::size_t single_transfer_sessions = 0;
  std::size_t multi_transfer_sessions = 0;
  /// Fraction of sessions with 1 or 2 transfers.
  double fraction_with_le2 = 0.0;
  std::size_t max_transfers_in_session = 0;
  std::size_t sessions_with_100_or_more = 0;

  std::size_t total_sessions() const {
    return single_transfer_sessions + multi_transfer_sessions;
  }
};

SessionCensus census(const std::vector<Session>& sessions);

/// Session sizes in (binary) MB, session order — Tables I/II top block.
std::vector<double> session_sizes_megabytes(const std::vector<Session>& sessions);

/// Session durations in seconds — Tables I/II middle block.
std::vector<double> session_durations_seconds(const std::vector<Session>& sessions);

}  // namespace gridvc::analysis
