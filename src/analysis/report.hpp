// Shared rendering helpers so every bench binary prints the paper's table
// shapes through one code path.
#pragma once

#include <string>
#include <vector>

#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace gridvc::analysis {

/// The paper's standard column set: Min / 1st Qu. / Median / Mean /
/// 3rd Qu. / Max (optionally + Std. Dev.).
std::vector<std::string> summary_header(const std::string& label_column,
                                        bool with_stddev = false,
                                        bool with_count = false);

/// Row of formatted summary values matching summary_header's layout.
std::vector<std::string> summary_row(const std::string& label, const stats::Summary& s,
                                     int decimals, bool with_stddev = false,
                                     bool with_count = false);

/// A crude ASCII scatter/series plot: x ascending, one char column per
/// x-bucket, `height` rows. Used for the figure benches.
std::string ascii_series(const std::vector<double>& x, const std::vector<double>& y,
                         int width = 72, int height = 16,
                         const std::string& x_label = "x",
                         const std::string& y_label = "y");

/// Two overlaid series (marked '1' and '8' — or the given marks) on a
/// shared axis; used by the Fig 3/4 benches.
std::string ascii_two_series(const std::vector<double>& x1, const std::vector<double>& y1,
                             char mark1, const std::vector<double>& x2,
                             const std::vector<double>& y2, char mark2, int width = 72,
                             int height = 16);

}  // namespace gridvc::analysis
