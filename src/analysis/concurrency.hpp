// Concurrent-transfer factor analysis (§VII-D, eq. (2), Figs 7-8).
//
// "For each of the 84 memory-to-memory transfers, the duration is divided
// into intervals based on the number of concurrent transfers being
// executed by the NERSC GridFTP server" (Fig 7), and a predicted
// throughput is computed as
//
//    t̂_i = R · Σ_j (d_ij / Σ_k t_k) / D_i                       (eq. 2)
//
// where R is "a theoretical maximum aggregated throughput that a server
// can support" (the paper uses the 90th percentile of observed transfer
// throughput), the inner sum Σ_k t_k runs over the recorded throughputs of
// the transfers concurrent in interval j (including transfer i itself),
// d_ij is interval j's duration and D_i the transfer's duration. The
// correlation between t̂_i and the actual t_i is Fig 8's ρ.
#pragma once

#include <cstddef>
#include <vector>

#include "common/units.hpp"
#include "gridftp/transfer_log.hpp"
#include "stats/correlation.hpp"

namespace gridvc::analysis {

/// One constant-concurrency interval within a transfer's duration (Fig 7).
struct ConcurrencyInterval {
  Seconds start = 0.0;
  Seconds duration = 0.0;
  /// Transfers in flight at the server during this interval, including
  /// the reference transfer itself.
  std::size_t concurrent = 0;
  /// Sum of the recorded (whole-transfer) throughputs of those transfers.
  BitsPerSecond concurrent_throughput_sum = 0.0;
};

/// Split transfer `index`'s duration into constant-concurrency intervals.
/// `all` is the full server log used to find overlapping transfers.
std::vector<ConcurrencyInterval> concurrency_timeline(const gridftp::TransferLog& all,
                                                      std::size_t index);

struct ConcurrencyPrediction {
  /// Predicted throughputs t̂_i (bits/s) for the `targets` subset, in order.
  std::vector<double> predicted;
  /// Actual throughputs t_i (bits/s), same order.
  std::vector<double> actual;
  /// R used (bits/s).
  BitsPerSecond r = 0.0;
  /// Pearson correlation between predicted and actual (Fig 8's rho).
  double rho = 0.0;
  /// Per-actual-throughput-quartile correlations (the paper reports
  /// 0.141, 0.051, 0.191, 0.347).
  std::vector<double> rho_by_quartile;
};

struct ConcurrencyOptions {
  /// Quantile of the targets' observed throughput used for R; <= 0 means
  /// the caller passes an explicit R via `fixed_r`.
  double r_quantile = 0.90;
  BitsPerSecond fixed_r = 0.0;
};

/// Run eq. (2) for the transfers at positions `targets` of `all`.
/// Requires non-empty targets with positive durations.
ConcurrencyPrediction predict_throughput(const gridftp::TransferLog& all,
                                         const std::vector<std::size_t>& targets,
                                         const ConcurrencyOptions& options = {});

}  // namespace gridvc::analysis
