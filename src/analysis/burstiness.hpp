// Session rate profiles and burstiness.
//
// §I: alpha flows "are responsible for increasing the burstiness of IP
// traffic" (Sarvotham et al.), and the related work's porcupine class is
// defined by burstiness. Transfer records carry only averages, but a
// *session's* rate profile can be reconstructed by superposing its member
// transfers' active intervals — which is exactly what a link between the
// two endpoints would have seen. The burstiness index (peak windowed rate
// over mean rate) then quantifies how spiky the session's offered load
// was, the property that motivates isolating these flows in their own
// queues (§I positive #3).
#pragma once

#include <vector>

#include "analysis/session_grouping.hpp"
#include "common/units.hpp"
#include "gridftp/transfer_log.hpp"

namespace gridvc::analysis {

/// A session's aggregate offered rate sampled on a fixed grid.
struct SessionRateProfile {
  Seconds window = 30.0;       ///< grid width (defaults to the SNMP bin)
  Seconds start = 0.0;         ///< grid origin (the session's start time)
  std::vector<double> rate_bps;  ///< mean aggregate rate within each window

  /// Peak windowed rate.
  double peak() const;
  /// Time-average rate over the whole profile.
  double mean() const;
  /// Burstiness index: peak / mean (>= 1 by construction; 1 = constant
  /// rate). Returns 0 for an all-idle profile.
  double burstiness() const;
};

/// Reconstruct `session`'s rate profile from its member transfers in
/// `log`. Each transfer contributes its average rate uniformly over its
/// [start, end) interval (the fluid view). Requires window > 0 and a
/// session with positive duration.
SessionRateProfile session_rate_profile(const gridftp::TransferLog& log,
                                        const Session& session, Seconds window = 30.0);

/// Burstiness index of every session (same order). Sessions shorter than
/// one window get index 1.
std::vector<double> session_burstiness(const gridftp::TransferLog& log,
                                       const std::vector<Session>& sessions,
                                       Seconds window = 30.0);

}  // namespace gridvc::analysis
