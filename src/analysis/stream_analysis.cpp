#include "analysis/stream_analysis.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gridvc::analysis {

StreamComparison compare_streams(const gridftp::TransferLog& log,
                                 const StreamAnalysisOptions& options) {
  GRIDVC_REQUIRE(options.streams_a != options.streams_b,
                 "stream groups must differ");
  stats::SizeBinner binner_a = stats::SizeBinner::paper_scheme();
  stats::SizeBinner binner_b = stats::SizeBinner::paper_scheme();

  StreamComparison cmp;
  cmp.group_a.streams = options.streams_a;
  cmp.group_b.streams = options.streams_b;
  for (const auto& r : log) {
    if (r.size >= options.max_size) continue;
    if (r.streams == options.streams_a) {
      binner_a.add(r.size, to_mbps(r.throughput()));
    } else if (r.streams == options.streams_b) {
      binner_b.add(r.size, to_mbps(r.throughput()));
    } else {
      ++cmp.unmatched;
    }
  }
  cmp.group_a.points = stats::binned_medians(binner_a, options.min_bin_count);
  cmp.group_b.points = stats::binned_medians(binner_b, options.min_bin_count);
  return cmp;
}

double convergence_size_mb(const StreamComparison& cmp, double tolerance) {
  GRIDVC_REQUIRE(tolerance > 0.0, "tolerance must be positive");
  // Walk both series from the largest size down; find the smallest size
  // above which every size-aligned pair of medians agrees within
  // tolerance.
  const auto& a = cmp.group_a.points;
  const auto& b = cmp.group_b.points;
  double converged_from = -1.0;
  std::size_t ia = 0;
  for (const auto& pb : b) {
    // Align by bin center (both series use the same binner).
    while (ia < a.size() && a[ia].size_mb < pb.size_mb) ++ia;
    if (ia >= a.size() || a[ia].size_mb != pb.size_mb) continue;
    const double lo = std::min(a[ia].median, pb.median);
    const double hi = std::max(a[ia].median, pb.median);
    const bool close = hi <= lo * (1.0 + tolerance);
    if (close) {
      if (converged_from < 0.0) converged_from = pb.size_mb;
    } else {
      converged_from = -1.0;  // diverged again; restart
    }
  }
  return converged_from;
}

}  // namespace gridvc::analysis
