#include "analysis/flow_classification.hpp"

#include <cmath>

#include "common/error.hpp"
#include "stats/quantile.hpp"

namespace gridvc::analysis {

namespace {

/// exp(mean + k*sd) of ln(x) over positive observations.
double log_space_cut(const std::vector<double>& values, double k) {
  double sum = 0.0;
  std::size_t n = 0;
  for (double v : values) {
    if (v > 0.0) {
      sum += std::log(v);
      ++n;
    }
  }
  GRIDVC_REQUIRE(n > 0, "no positive observations for threshold");
  const double mean = sum / static_cast<double>(n);
  double ss = 0.0;
  for (double v : values) {
    if (v > 0.0) {
      const double d = std::log(v) - mean;
      ss += d * d;
    }
  }
  const double sd = n > 1 ? std::sqrt(ss / static_cast<double>(n - 1)) : 0.0;
  return std::exp(mean + k * sd);
}

}  // namespace

ClassThresholds log_space_thresholds(const gridftp::TransferLog& log, double k) {
  GRIDVC_REQUIRE(!log.empty(), "thresholds of an empty log");
  std::vector<double> sizes, durations, rates;
  sizes.reserve(log.size());
  durations.reserve(log.size());
  rates.reserve(log.size());
  for (const auto& r : log) {
    sizes.push_back(static_cast<double>(r.size));
    durations.push_back(r.duration);
    rates.push_back(r.throughput());
  }
  ClassThresholds t;
  t.size_bytes = log_space_cut(sizes, k);
  t.duration_seconds = log_space_cut(durations, k);
  t.rate_bps = log_space_cut(rates, k);
  return t;
}

ClassThresholds quantile_thresholds(const gridftp::TransferLog& log, double p) {
  GRIDVC_REQUIRE(!log.empty(), "thresholds of an empty log");
  GRIDVC_REQUIRE(p > 0.0 && p < 1.0, "quantile must be in (0, 1)");
  std::vector<double> sizes, durations, rates;
  sizes.reserve(log.size());
  durations.reserve(log.size());
  rates.reserve(log.size());
  for (const auto& r : log) {
    sizes.push_back(static_cast<double>(r.size));
    durations.push_back(r.duration);
    rates.push_back(r.throughput());
  }
  ClassThresholds t;
  t.size_bytes = stats::quantile(sizes, p);
  t.duration_seconds = stats::quantile(durations, p);
  t.rate_bps = stats::quantile(rates, p);
  return t;
}

std::vector<std::uint8_t> classify(const gridftp::TransferLog& log,
                                   const ClassThresholds& thresholds) {
  std::vector<std::uint8_t> masks;
  masks.reserve(log.size());
  for (const auto& r : log) {
    std::uint8_t mask = 0;
    if (static_cast<double>(r.size) >= thresholds.size_bytes) mask |= kElephant;
    if (r.duration >= thresholds.duration_seconds) mask |= kTortoise;
    if (r.throughput() >= thresholds.rate_bps) mask |= kCheetah;
    masks.push_back(mask);
  }
  return masks;
}

ClassificationSummary summarize_classification(const gridftp::TransferLog& log,
                                               const std::vector<std::uint8_t>& masks) {
  GRIDVC_REQUIRE(log.size() == masks.size(), "mask/log size mismatch");
  ClassificationSummary s;
  s.total = log.size();

  const std::uint8_t bits[3] = {kElephant, kTortoise, kCheetah};
  std::size_t counts[3] = {0, 0, 0};
  std::size_t joint[3][3] = {};
  double total_bytes = 0.0, alpha_bytes = 0.0;

  for (std::size_t i = 0; i < masks.size(); ++i) {
    total_bytes += static_cast<double>(log[i].size);
    const std::uint8_t m = masks[i];
    for (int a = 0; a < 3; ++a) {
      if (!(m & bits[a])) continue;
      ++counts[a];
      for (int b = 0; b < 3; ++b) {
        if (m & bits[b]) ++joint[a][b];
      }
    }
    if ((m & kElephant) && (m & kCheetah)) {
      ++s.alphas;
      alpha_bytes += static_cast<double>(log[i].size);
    }
  }
  s.elephants = counts[0];
  s.tortoises = counts[1];
  s.cheetahs = counts[2];
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      s.overlap[a][b] = counts[a] > 0 ? static_cast<double>(joint[a][b]) /
                                            static_cast<double>(counts[a])
                                      : 0.0;
    }
  }
  s.alpha_byte_fraction = total_bytes > 0.0 ? alpha_bytes / total_bytes : 0.0;
  return s;
}

}  // namespace gridvc::analysis
