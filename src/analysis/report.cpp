#include "analysis/report.hpp"

#include <algorithm>
#include <cmath>

#include "common/strings.hpp"

namespace gridvc::analysis {

std::vector<std::string> summary_header(const std::string& label_column, bool with_stddev,
                                        bool with_count) {
  std::vector<std::string> h{label_column};
  if (with_count) h.push_back("N");
  h.insert(h.end(), {"Min", "1st Qu.", "Median", "Mean", "3rd Qu.", "Max"});
  if (with_stddev) h.push_back("Std. Dev.");
  return h;
}

std::vector<std::string> summary_row(const std::string& label, const stats::Summary& s,
                                     int decimals, bool with_stddev, bool with_count) {
  std::vector<std::string> row{label};
  if (with_count) row.push_back(std::to_string(s.count));
  row.push_back(gridvc::format_grouped(s.min, decimals));
  row.push_back(gridvc::format_grouped(s.q1, decimals));
  row.push_back(gridvc::format_grouped(s.median, decimals));
  row.push_back(gridvc::format_grouped(s.mean, decimals));
  row.push_back(gridvc::format_grouped(s.q3, decimals));
  row.push_back(gridvc::format_grouped(s.max, decimals));
  if (with_stddev) row.push_back(gridvc::format_grouped(s.stddev, decimals));
  return row;
}

namespace {

struct Frame {
  double x_lo, x_hi, y_lo, y_hi;
};

Frame frame_of(const std::vector<double>& x, const std::vector<double>& y) {
  Frame f{0.0, 1.0, 0.0, 1.0};
  if (!x.empty()) {
    f.x_lo = *std::min_element(x.begin(), x.end());
    f.x_hi = *std::max_element(x.begin(), x.end());
  }
  if (!y.empty()) {
    f.y_lo = *std::min_element(y.begin(), y.end());
    f.y_hi = *std::max_element(y.begin(), y.end());
  }
  if (f.x_hi <= f.x_lo) f.x_hi = f.x_lo + 1.0;
  if (f.y_hi <= f.y_lo) f.y_hi = f.y_lo + 1.0;
  return f;
}

void plot_into(std::vector<std::string>& grid, const Frame& f, const std::vector<double>& x,
               const std::vector<double>& y, char mark, int width, int height) {
  for (std::size_t i = 0; i < x.size() && i < y.size(); ++i) {
    const int col = static_cast<int>(
        std::lround((x[i] - f.x_lo) / (f.x_hi - f.x_lo) * (width - 1)));
    const int row = static_cast<int>(
        std::lround((y[i] - f.y_lo) / (f.y_hi - f.y_lo) * (height - 1)));
    const int r = height - 1 - std::clamp(row, 0, height - 1);
    const int c = std::clamp(col, 0, width - 1);
    grid[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = mark;
  }
}

std::string render_grid(const std::vector<std::string>& grid, const Frame& f) {
  std::string out;
  out += gridvc::format_fixed(f.y_hi, 1) + "\n";
  for (const auto& row : grid) out += "| " + row + "\n";
  out += gridvc::format_fixed(f.y_lo, 1) + " +" +
         std::string(grid.empty() ? 0 : grid[0].size(), '-') + "\n";
  out += "   x: [" + gridvc::format_fixed(f.x_lo, 1) + ", " +
         gridvc::format_fixed(f.x_hi, 1) + "]\n";
  return out;
}

}  // namespace

std::string ascii_series(const std::vector<double>& x, const std::vector<double>& y,
                         int width, int height, const std::string& x_label,
                         const std::string& y_label) {
  const Frame f = frame_of(x, y);
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  plot_into(grid, f, x, y, '*', width, height);
  return y_label + " vs " + x_label + "\n" + render_grid(grid, f);
}

std::string ascii_two_series(const std::vector<double>& x1, const std::vector<double>& y1,
                             char mark1, const std::vector<double>& x2,
                             const std::vector<double>& y2, char mark2, int width,
                             int height) {
  std::vector<double> all_x(x1), all_y(y1);
  all_x.insert(all_x.end(), x2.begin(), x2.end());
  all_y.insert(all_y.end(), y2.begin(), y2.end());
  const Frame f = frame_of(all_x, all_y);
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  plot_into(grid, f, x1, y1, mark1, width, height);
  plot_into(grid, f, x2, y2, mark2, width, height);
  return render_grid(grid, f);
}

}  // namespace gridvc::analysis
