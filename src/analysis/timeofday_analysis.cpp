#include "analysis/timeofday_analysis.hpp"

#include <cmath>
#include <vector>

namespace gridvc::analysis {

int hour_of_day(Seconds t) {
  double seconds_into_day = std::fmod(t, kDay);
  if (seconds_into_day < 0.0) seconds_into_day += kDay;
  return static_cast<int>(seconds_into_day / kHour) % 24;
}

std::vector<TimeOfDayPoint> time_of_day_scatter(const gridftp::TransferLog& log) {
  std::vector<TimeOfDayPoint> out;
  out.reserve(log.size());
  for (const auto& r : log) {
    double seconds_into_day = std::fmod(r.start_time, kDay);
    if (seconds_into_day < 0.0) seconds_into_day += kDay;
    out.push_back(TimeOfDayPoint{seconds_into_day / kHour, to_mbps(r.throughput())});
  }
  return out;
}

std::map<int, stats::Summary> throughput_by_start_hour(const gridftp::TransferLog& log,
                                                       std::size_t min_count) {
  std::map<int, std::vector<double>> groups;
  for (const auto& r : log) {
    groups[hour_of_day(r.start_time)].push_back(to_mbps(r.throughput()));
  }
  std::map<int, stats::Summary> out;
  for (const auto& [hour, values] : groups) {
    if (values.size() < min_count) continue;
    out.emplace(hour, stats::summarize(values));
  }
  return out;
}

}  // namespace gridvc::analysis
