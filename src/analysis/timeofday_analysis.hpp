// Time-of-day factor analysis (§VII-C, Fig 6).
//
// The 145 32-GB NERSC–ORNL test transfers "started at either 2 AM or
// 8 AM"; Fig 6 scatters throughput against start hour. The helpers here
// fold simulation time onto a 24-hour clock and summarize throughput per
// start-hour group.
#pragma once

#include <map>
#include <vector>

#include "common/units.hpp"
#include "gridftp/transfer_log.hpp"
#include "stats/summary.hpp"

namespace gridvc::analysis {

/// Hour-of-day (0-23) of a simulation timestamp; day 0 starts at t = 0.
int hour_of_day(Seconds t);

/// One transfer's (hour, throughput Mbps) pair — the Fig 6 scatter.
struct TimeOfDayPoint {
  double hour = 0.0;  ///< fractional hour of day of the start time
  double throughput_mbps = 0.0;
};

std::vector<TimeOfDayPoint> time_of_day_scatter(const gridftp::TransferLog& log);

/// Throughput summary per integer start hour. Hours with fewer than
/// `min_count` transfers are dropped.
std::map<int, stats::Summary> throughput_by_start_hour(const gridftp::TransferLog& log,
                                                       std::size_t min_count = 2);

}  // namespace gridvc::analysis
