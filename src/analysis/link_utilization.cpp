#include "analysis/link_utilization.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace gridvc::analysis {

double attributed_bytes(const net::SnmpSeries& series, Seconds start, Seconds duration) {
  GRIDVC_REQUIRE(duration >= 0.0, "negative transfer duration");
  if (series.bins.empty() || duration == 0.0) return 0.0;
  const Seconds end = start + duration;
  const Seconds bin = series.bin_seconds;
  double total = 0.0;
  for (std::size_t i = 0; i < series.bins.size(); ++i) {
    const Seconds b0 = series.bin_start(i);
    const Seconds b1 = b0 + bin;
    if (b1 <= start) continue;
    if (b0 >= end) break;
    // Overlap-weighted share of this bin's byte count — eq. (1)'s
    // (tau_i2 - s_i)/30 and (s_i + D_i - tau_i(m-1))/30 edge factors,
    // generalized to also handle a transfer inside a single bin.
    const Seconds overlap = std::min(b1, end) - std::max(b0, start);
    total += series.bins[i] * (overlap / bin);
  }
  return total;
}

std::vector<double> attributed_bytes_per_transfer(const net::SnmpSeries& series,
                                                  const gridftp::TransferLog& log) {
  std::vector<double> out;
  out.reserve(log.size());
  for (const auto& r : log) {
    out.push_back(attributed_bytes(series, r.start_time, r.duration));
  }
  return out;
}

LinkCorrelation correlate_link(const net::SnmpSeries& series,
                               const gridftp::TransferLog& log) {
  return correlate_attributed(attributed_bytes_per_transfer(series, log), log);
}

LinkCorrelation correlate_attributed(const std::vector<double>& total_bytes,
                                     const gridftp::TransferLog& log) {
  GRIDVC_REQUIRE(!log.empty(), "link correlation of an empty log");
  GRIDVC_REQUIRE(total_bytes.size() == log.size(),
                 "attributed-bytes vector does not match the log");

  std::vector<double> gridftp_bytes, other_bytes, throughput, load_gbps;
  gridftp_bytes.reserve(log.size());
  other_bytes.reserve(log.size());
  throughput.reserve(log.size());
  load_gbps.reserve(log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    const double bytes = static_cast<double>(log[i].size);
    gridftp_bytes.push_back(bytes);
    other_bytes.push_back(std::max(0.0, total_bytes[i] - bytes));
    throughput.push_back(log[i].throughput());
    const double seconds = std::max(log[i].duration, 1e-9);
    load_gbps.push_back(total_bytes[i] * 8.0 / seconds / 1e9);
  }

  LinkCorrelation out;
  out.gridftp_vs_total =
      stats::correlate_by_quartile(gridftp_bytes, total_bytes, throughput);
  out.gridftp_vs_other =
      stats::correlate_by_quartile(gridftp_bytes, other_bytes, throughput);
  out.load_gbps = stats::summarize(load_gbps);
  return out;
}

}  // namespace gridvc::analysis
