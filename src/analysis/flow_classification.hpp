// Flow classification in the style of the paper's related work (§III).
//
// Lan & Heidemann classify flows on size / duration / rate / burstiness
// ("elephants, tortoises, cheetahs, porcupines"), flagging a flow when a
// dimension exceeds mean + k·sd; Sarvotham et al.'s alpha flows are the
// large-AND-fast intersection over a high-capacity path. The paper leans
// on both: its subject population is exactly the alpha class.
//
// This module applies that taxonomy to a GridFTP transfer log (burstiness
// is not recoverable from per-transfer records, so the three observable
// dimensions are used) and reports the class overlap matrix — the
// "X% of cheetahs are also elephants" style of statement.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "gridftp/transfer_log.hpp"

namespace gridvc::analysis {

/// Class membership bitmask for one transfer.
enum FlowClassBit : std::uint8_t {
  kElephant = 1 << 0,  ///< size outlier
  kTortoise = 1 << 1,  ///< duration outlier
  kCheetah = 1 << 2,   ///< rate outlier
};

struct ClassThresholds {
  double size_bytes = 0.0;
  double duration_seconds = 0.0;
  double rate_bps = 0.0;
};

/// Lan-&-Heidemann-style thresholds: exp(mean + k·sd) of each dimension's
/// natural log (the dimensions are heavy-tailed, so the cut is taken in
/// log space). Requires a non-empty log; zero-valued observations are
/// excluded from the moment estimates.
ClassThresholds log_space_thresholds(const gridftp::TransferLog& log, double k = 3.0);

/// Quantile-based thresholds: a transfer is an outlier on a dimension
/// when it sits in that dimension's top (1-p) tail. Better suited to a
/// GridFTP-only log, where *every* flow is large by general-Internet
/// standards and the log-space moments are dominated by the in-population
/// spread. Requires non-empty log and p in (0, 1).
ClassThresholds quantile_thresholds(const gridftp::TransferLog& log, double p = 0.95);

/// Membership masks, log order.
std::vector<std::uint8_t> classify(const gridftp::TransferLog& log,
                                   const ClassThresholds& thresholds);

struct ClassificationSummary {
  std::size_t total = 0;
  std::size_t elephants = 0;
  std::size_t tortoises = 0;
  std::size_t cheetahs = 0;
  /// Alpha flows: elephant AND cheetah (big and fast).
  std::size_t alphas = 0;
  /// overlap[i][j] = P(class j | class i) for i,j in {elephant, tortoise,
  /// cheetah}; diagonal is 1 for non-empty classes.
  double overlap[3][3] = {};
  /// Fraction of total bytes moved by alpha flows — the operational
  /// punchline: a tiny class carries most of the volume.
  double alpha_byte_fraction = 0.0;
};

ClassificationSummary summarize_classification(const gridftp::TransferLog& log,
                                               const std::vector<std::uint8_t>& masks);

}  // namespace gridvc::analysis
