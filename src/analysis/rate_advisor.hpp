// Circuit-sizing advisor.
//
// §VII gives two reasons for the factor analysis; the second is "to
// provide a mechanism for the data transfer application to estimate the
// rate and duration it should specify when requesting a virtual circuit
// based on values chosen for parameters such as number of stripes,
// number of streams, etc." This module is that mechanism: given the
// site's own transfer history, it matches a planned transfer's
// configuration (streams, stripes, size class) against comparable past
// transfers and recommends
//
//   * a circuit *rate* the transfer can realistically use (an upper-mid
//     quantile of matched throughput — reserving more wastes the pool),
//   * a circuit *duration* the transfer will fit in with the requested
//     confidence (size over a *low* quantile of matched throughput, so
//     slow realizations still finish inside the window).
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/units.hpp"
#include "gridftp/transfer_log.hpp"

namespace gridvc::analysis {

struct AdviceRequest {
  Bytes size = 0;
  int streams = 1;
  int stripes = 1;
  /// Desired probability that the transfer finishes within the advised
  /// duration, in (0, 1).
  double confidence = 0.9;
};

struct CircuitAdvice {
  /// Recommended reservation rate.
  BitsPerSecond rate = 0.0;
  /// Recommended reservation duration (setup delay not included).
  Seconds duration = 0.0;
  /// Historical transfers the advice was derived from.
  std::size_t sample_size = 0;
  /// True when the matcher had to drop the streams/stripes filters to
  /// find enough history (advice is weaker).
  bool fallback = false;
};

struct RateAdvisorConfig {
  /// Matched transfers must have size within [size/band, size*band].
  double size_band = 4.0;
  /// Minimum matched sample before widening the filters.
  std::size_t min_samples = 20;
  /// Quantile of matched throughput used for the reservation rate.
  double rate_quantile = 0.75;
};

class RateAdvisor {
 public:
  /// Builds a size-sorted per-configuration index over `history` (copied
  /// into the index; the log need not outlive the advisor). Requires a
  /// non-empty history.
  explicit RateAdvisor(const gridftp::TransferLog& history,
                       RateAdvisorConfig config = {});

  /// Advice for a planned transfer, or nullopt when even the widened
  /// matcher finds no history at all. O(matched log matched) via the
  /// index, independent of total history size outside the size band.
  std::optional<CircuitAdvice> advise(const AdviceRequest& request) const;

 private:
  struct Sample {
    double size;
    double throughput;
  };
  // Size-sorted samples per (streams, stripes), plus one pooled list.
  std::map<std::pair<int, int>, std::vector<Sample>> by_config_;
  std::vector<Sample> pooled_;
  RateAdvisorConfig config_;

  /// Throughputs of samples with size in [lo, hi] from a size-sorted list.
  static std::vector<double> band(const std::vector<Sample>& sorted, double lo,
                                  double hi);
};

}  // namespace gridvc::analysis
