// Transfer-throughput characterization (§VI-B, §VII-A).
//
// Slicing helpers behind Tables V–IX: five-number summaries of throughput
// for a whole log, for size-range subsets (the NCAR "16G"/"4G" transfer
// classes), grouped by stripe count (Table IX), and grouped by calendar
// year (Table VIII — the NCAR pool shrank year over year).
#pragma once

#include <functional>
#include <map>

#include "common/units.hpp"
#include "gridftp/transfer_log.hpp"
#include "stats/summary.hpp"

namespace gridvc::analysis {

/// Summary of per-transfer throughput in Mbps. Requires a non-empty log.
stats::Summary throughput_summary_mbps(const gridftp::TransferLog& log);

/// Summary of per-transfer duration in seconds. Requires a non-empty log.
stats::Summary duration_summary_seconds(const gridftp::TransferLog& log);

/// Transfers with size in [lo, hi).
gridftp::TransferLog filter_by_size(const gridftp::TransferLog& log, Bytes lo, Bytes hi);

/// Transfers matching a predicate.
gridftp::TransferLog filter(const gridftp::TransferLog& log,
                            const std::function<bool(const gridftp::TransferRecord&)>& pred);

/// Throughput summary per stripe count (Table IX). Groups with fewer than
/// `min_count` transfers are dropped.
std::map<int, stats::Summary> throughput_by_stripes(const gridftp::TransferLog& log,
                                                    std::size_t min_count = 2);

/// Maps a record's start time to a calendar year. Simulation time is
/// seconds from an epoch; scenario builders provide the mapping.
using YearOf = std::function<int(Seconds)>;

/// Throughput summary per year (Table VIII).
std::map<int, stats::Summary> throughput_by_year(const gridftp::TransferLog& log,
                                                 const YearOf& year_of,
                                                 std::size_t min_count = 2);

}  // namespace gridvc::analysis
