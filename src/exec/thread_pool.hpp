// Deterministic parallel execution substrate.
//
// A fixed-size pool of persistent workers plus the calling thread run
// index-space loops (`parallel_for`) and maps (`parallel_map`). The pool
// is intentionally work-stealing-free: indices are claimed in contiguous
// chunks off a single atomic cursor, every index writes only to its own
// output slot, and any randomness a task needs comes from a counter-based
// stream keyed on the task index (rng_stream.hpp) — never from shared
// sequential state. Under that contract the result of a parallel region
// is byte-identical at any thread count, including 1; tests/test_exec.cpp
// pins this for the synthesizer, the suitability sweep, and scenario
// replications.
//
// Scheduling-order effects (which thread runs which chunk, completion
// order) exist but are unobservable through the API: parallel_for blocks
// until every index completed, and the first exception thrown by any
// index is rethrown to the caller after the region drains.
//
// Nested use: a parallel_for issued from inside a pool worker runs inline
// on that worker (no new parallelism, no deadlock), so library functions
// may use the default pool freely without caring whether their caller is
// already parallel.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

namespace gridvc::exec {

class ThreadPool {
 public:
  /// A pool of `threads` execution lanes (the calling thread counts as
  /// one; `threads - 1` workers are spawned). 0 means one lane per
  /// hardware thread. A 1-lane pool runs everything inline.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned thread_count() const { return threads_; }

  /// Run `body(i)` for every i in [0, n); blocks until all complete.
  /// Each index must depend only on its own value (plus immutable shared
  /// state) and write only index-owned slots — that is what makes the
  /// region deterministic. The first exception any index throws is
  /// rethrown here once the region drains.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// parallel_for producing out[i] = fn(i). T must be default- and
  /// move-constructible.
  template <typename T, typename Fn>
  std::vector<T> parallel_map(std::size_t n, Fn&& fn) {
    std::vector<T> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;  ///< null for a 1-lane pool
  unsigned threads_ = 1;
};

/// Hardware thread count (>= 1 even when unknown).
unsigned hardware_threads();

/// Configure the process-default lane count used by default_pool().
/// 0 restores "one lane per hardware thread". Takes effect on the next
/// default_pool() call (the old pool is torn down). The `--threads N`
/// CLI flags and the benches' GRIDVC_THREADS variable land here.
void set_default_threads(unsigned n);

/// The currently configured default lane count (>= 1).
unsigned default_threads();

/// Process-wide shared pool, created on first use with default_threads()
/// lanes. Intended for use from the main thread; nested use from inside
/// a parallel region runs inline.
ThreadPool& default_pool();

}  // namespace gridvc::exec
