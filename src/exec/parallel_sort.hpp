// Thread-count-independent parallel sorting.
//
// Partition + ordered merge: the input is cut into contiguous runs at
// bounds computed from the input size alone, each run is stable-sorted
// in parallel, and adjacent runs are merged pairwise (stable) until one
// remains. Because the run bounds do not depend on the pool size and
// every merge is stable, the output is exactly std::stable_sort's —
// byte-identical at any thread count. Million-record session logs and
// quantile inputs go through here.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

#include "exec/thread_pool.hpp"

namespace gridvc::exec {

/// Smallest input that leaves the serial path (also the run granularity:
/// inputs split into ~size/kParallelSortGrain runs, capped at 64).
inline constexpr std::size_t kParallelSortGrain = 16384;

template <typename T, typename Compare = std::less<T>>
void parallel_sort(std::vector<T>& v, ThreadPool& pool, Compare cmp = Compare()) {
  const std::size_t n = v.size();
  if (pool.thread_count() <= 1 || n < 2 * kParallelSortGrain) {
    std::stable_sort(v.begin(), v.end(), cmp);
    return;
  }
  // Run bounds depend only on n — never on the pool — so the stable
  // sort/merge tree below produces the same permutation everywhere.
  const std::size_t runs = std::min<std::size_t>(64, n / kParallelSortGrain);
  std::vector<std::size_t> bounds(runs + 1);
  for (std::size_t r = 0; r <= runs; ++r) bounds[r] = n * r / runs;

  pool.parallel_for(runs, [&](std::size_t r) {
    std::stable_sort(v.begin() + static_cast<std::ptrdiff_t>(bounds[r]),
                     v.begin() + static_cast<std::ptrdiff_t>(bounds[r + 1]), cmp);
  });

  while (bounds.size() > 2) {
    const std::size_t pairs = (bounds.size() - 1) / 2;
    pool.parallel_for(pairs, [&](std::size_t p) {
      std::inplace_merge(v.begin() + static_cast<std::ptrdiff_t>(bounds[2 * p]),
                         v.begin() + static_cast<std::ptrdiff_t>(bounds[2 * p + 1]),
                         v.begin() + static_cast<std::ptrdiff_t>(bounds[2 * p + 2]),
                         cmp);
    });
    std::vector<std::size_t> merged;
    merged.reserve(pairs + 2);
    for (std::size_t i = 0; i < bounds.size(); i += 2) merged.push_back(bounds[i]);
    if (merged.back() != n) merged.push_back(n);
    bounds = std::move(merged);
  }
}

/// Convenience over the process-default pool.
template <typename T, typename Compare = std::less<T>>
void parallel_sort(std::vector<T>& v, Compare cmp = Compare()) {
  parallel_sort(v, default_pool(), cmp);
}

}  // namespace gridvc::exec
