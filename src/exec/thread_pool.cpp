#include "exec/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>

#include "obs/profiler.hpp"

namespace gridvc::exec {

namespace {
// Set while a pool worker (or the caller inside parallel_for) is
// executing region bodies; nested regions then run inline.
thread_local bool t_inside_region = false;
}  // namespace

struct ThreadPool::Impl {
  std::mutex m;
  std::condition_variable cv_work;  ///< workers wait here for a job
  std::condition_variable cv_done;  ///< parallel_for waits here for drain

  // Current job. `job_id` bumps per region so workers can tell a new job
  // from a spurious wake; `next` is the shared index cursor.
  const std::function<void(std::size_t)>* body = nullptr;
  std::size_t n = 0;
  std::size_t chunk = 1;
  std::atomic<std::size_t> next{0};
  std::uint64_t job_id = 0;
  std::size_t busy_workers = 0;
  bool stop = false;

  std::mutex error_m;
  std::exception_ptr error;

  std::vector<std::thread> workers;

  // Claim and run chunks until the cursor passes n. Returns when this
  // thread can claim no more work (other threads may still be running
  // their last chunk).
  void run_chunks() {
    t_inside_region = true;
    for (;;) {
      const std::size_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      const std::size_t end = std::min(n, begin + chunk);
      try {
        for (std::size_t i = begin; i < end; ++i) (*body)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(error_m);
        if (!error) error = std::current_exception();
        // Short-circuit the remaining index space; the region still
        // drains normally and rethrows below.
        next.store(n, std::memory_order_relaxed);
      }
    }
    t_inside_region = false;
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(m);
        cv_work.wait(lk, [&] { return stop || job_id != seen; });
        if (stop) return;
        seen = job_id;
      }
      run_chunks();
      {
        std::lock_guard<std::mutex> lk(m);
        if (--busy_workers == 0) cv_done.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(unsigned threads) {
  threads_ = threads == 0 ? hardware_threads() : threads;
  if (threads_ <= 1) return;  // inline pool: no workers, no Impl
  impl_ = std::make_unique<Impl>();
  impl_->workers.reserve(threads_ - 1);
  for (unsigned i = 0; i + 1 < threads_; ++i) {
    // Lane i + 1: the parallel_for caller is lane 0. The label feeds the
    // profiler's deterministic buffer ordering and timeline tids.
    impl_->workers.emplace_back([this, i] {
      obs::Profiler::set_thread_lane(i + 1);
      impl_->worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  if (!impl_) return;
  {
    std::lock_guard<std::mutex> lk(impl_->m);
    impl_->stop = true;
  }
  impl_->cv_work.notify_all();
  for (auto& w : impl_->workers) w.join();
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  // Inline when the pool has one lane, or when called from inside a
  // region (nested parallelism runs serially on the calling lane).
  if (!impl_ || t_inside_region) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(impl_->m);
    impl_->body = &body;
    impl_->n = n;
    // ~4 chunks per lane amortizes the cursor while keeping tail latency
    // bounded; chunk geometry never affects results, only load balance.
    impl_->chunk = std::max<std::size_t>(
        1, n / (static_cast<std::size_t>(threads_) * 4));
    impl_->next.store(0, std::memory_order_relaxed);
    impl_->error = nullptr;
    impl_->busy_workers = impl_->workers.size();
    ++impl_->job_id;
  }
  impl_->cv_work.notify_all();
  impl_->run_chunks();  // the caller is a lane too
  {
    std::unique_lock<std::mutex> lk(impl_->m);
    impl_->cv_done.wait(lk, [&] { return impl_->busy_workers == 0; });
    impl_->body = nullptr;
  }
  if (impl_->error) {
    std::exception_ptr e = impl_->error;
    impl_->error = nullptr;
    std::rethrow_exception(e);
  }
}

unsigned hardware_threads() {
  const unsigned h = std::thread::hardware_concurrency();
  return h == 0 ? 1 : h;
}

namespace {
std::mutex g_default_m;
unsigned g_default_requested = 0;  // 0 = hardware
std::unique_ptr<ThreadPool> g_default_pool;
}  // namespace

void set_default_threads(unsigned n) {
  std::lock_guard<std::mutex> lk(g_default_m);
  g_default_requested = n;
  g_default_pool.reset();
}

unsigned default_threads() {
  std::lock_guard<std::mutex> lk(g_default_m);
  return g_default_requested == 0 ? hardware_threads() : g_default_requested;
}

ThreadPool& default_pool() {
  std::lock_guard<std::mutex> lk(g_default_m);
  if (!g_default_pool) {
    const unsigned n =
        g_default_requested == 0 ? hardware_threads() : g_default_requested;
    g_default_pool = std::make_unique<ThreadPool>(n);
  }
  return *g_default_pool;
}

}  // namespace gridvc::exec
