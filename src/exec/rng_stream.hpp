// Counter-based RNG stream derivation for deterministic parallelism.
//
// Every parallel task draws from a generator derived purely from
// (seed, stream index) — never from a shared, sequentially-consumed
// stream — so the set of random numbers a task sees is independent of
// how tasks are scheduled onto threads. Results are byte-identical at
// any thread count, which is the contract the whole src/exec/ substrate
// is built around (pinned by tests/test_exec.cpp).
//
// Derivation: the (seed, stream) pair is run through two rounds of
// splitmix64 finalization keyed on distinct odd constants, giving a
// 64-bit stream key with full avalanche in both inputs; the key seeds
// the library's xoshiro256** generator. Adjacent stream indices yield
// statistically independent generators (same construction as
// Rng::fork, but stateless/counter-based: stream i's generator never
// depends on streams 0..i-1 having been instantiated).
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace gridvc::exec {

/// 64-bit key for stream `stream` under `seed`. Pure function.
inline std::uint64_t stream_key(std::uint64_t seed, std::uint64_t stream) {
  // splitmix64 advances its state argument, so the two draws below come
  // from consecutive states. The second perturbation uses addition, not
  // xor: an xor of a stream-derived value against the advanced state can
  // cancel back to the first draw's state (it did, for seed 0 stream 0),
  // collapsing the key to zero.
  std::uint64_t s = seed ^ (stream * 0xd1342543de82ef95ULL);
  std::uint64_t k = splitmix64(s);
  s += stream ^ 0x9e3779b97f4a7c15ULL;
  k ^= splitmix64(s);
  return k;
}

/// Generator for stream `stream` under `seed`. Two calls with the same
/// arguments produce identical generators; distinct streams are
/// statistically independent.
inline Rng stream_rng(std::uint64_t seed, std::uint64_t stream) {
  return Rng(stream_key(seed, stream));
}

}  // namespace gridvc::exec
