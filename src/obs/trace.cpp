#include "obs/trace.hpp"

#include <cctype>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace gridvc::obs {

namespace {

struct NameEntry {
  TraceEventType type;
  const char* name;
};

constexpr NameEntry kNames[] = {
    {TraceEventType::kTransferSubmitted, "transfer_submitted"},
    {TraceEventType::kTransferStarted, "transfer_started"},
    {TraceEventType::kTransferStripeCompleted, "transfer_stripe_completed"},
    {TraceEventType::kTransferRetry, "transfer_retry"},
    {TraceEventType::kTransferFinished, "transfer_finished"},
    {TraceEventType::kTaskSubmitted, "task_submitted"},
    {TraceEventType::kTaskStarted, "task_started"},
    {TraceEventType::kTaskFinished, "task_finished"},
    {TraceEventType::kSessionOpened, "session_opened"},
    {TraceEventType::kSessionClosed, "session_closed"},
    {TraceEventType::kVcRequested, "vc_requested"},
    {TraceEventType::kVcGranted, "vc_granted"},
    {TraceEventType::kVcRejected, "vc_rejected"},
    {TraceEventType::kVcActivated, "vc_activated"},
    {TraceEventType::kVcReleased, "vc_released"},
    {TraceEventType::kVcCancelled, "vc_cancelled"},
    {TraceEventType::kVcFailed, "vc_failed"},
    {TraceEventType::kNetRecompute, "net_recompute"},
    {TraceEventType::kLinkDown, "link_down"},
    {TraceEventType::kLinkUp, "link_up"},
    {TraceEventType::kTransferAborted, "transfer_aborted"},
    {TraceEventType::kServerDown, "server_down"},
    {TraceEventType::kServerUp, "server_up"},
    {TraceEventType::kIdcOutageBegin, "idc_outage_begin"},
    {TraceEventType::kIdcOutageEnd, "idc_outage_end"},
    {TraceEventType::kTaskShed, "task_shed"},
    {TraceEventType::kJournalReplay, "journal_replay"},
    {TraceEventType::kVcSegmentBooked, "vc_segment_booked"},
    {TraceEventType::kVcSegmentRollback, "vc_segment_rollback"},
    {TraceEventType::kFrontSessionOpened, "front_session_opened"},
    {TraceEventType::kFrontSessionClosed, "front_session_closed"},
    {TraceEventType::kFrontSubmit, "front_submit"},
    {TraceEventType::kFrontReject, "front_reject"},
    {TraceEventType::kFrontDispatch, "front_dispatch"},
    {TraceEventType::kFrontShed, "front_shed"},
    {TraceEventType::kFrontCancel, "front_cancel"},
};

std::string fmt_double(double v) {
  std::ostringstream os;
  os.precision(12);
  os << v;
  return os.str();
}

}  // namespace

const char* trace_event_name(TraceEventType type) {
  for (const auto& e : kNames) {
    if (e.type == type) return e.name;
  }
  return "unknown";
}

bool parse_trace_event_name(const std::string& name, TraceEventType& out) {
  for (const auto& e : kNames) {
    if (name == e.name) {
      out = e.type;
      return true;
    }
  }
  return false;
}

void JsonlTraceSink::emit(const TraceEvent& event) {
  out_ << "{\"t\":" << fmt_double(event.time) << ",\"ev\":\""
       << trace_event_name(event.type) << "\",\"id\":" << event.id;
  if (event.aux != 0) out_ << ",\"aux\":" << event.aux;
  if (event.value != 0.0) out_ << ",\"v\":" << fmt_double(event.value);
  if (event.value2 != 0.0) out_ << ",\"v2\":" << fmt_double(event.value2);
  out_ << "}\n";
}

RingBufferTraceSink::RingBufferTraceSink(std::size_t capacity) : capacity_(capacity) {
  GRIDVC_REQUIRE(capacity > 0, "ring buffer capacity must be positive");
  buffer_.reserve(capacity);
}

void RingBufferTraceSink::emit(const TraceEvent& event) {
  if (buffer_.size() < capacity_) {
    buffer_.push_back(event);
  } else {
    buffer_[next_] = event;
    next_ = (next_ + 1) % capacity_;
  }
  ++total_;
}

std::vector<TraceEvent> RingBufferTraceSink::events() const {
  std::vector<TraceEvent> out;
  out.reserve(buffer_.size());
  for (std::size_t i = 0; i < buffer_.size(); ++i) {
    out.push_back(buffer_[(next_ + i) % buffer_.size()]);
  }
  return out;
}

namespace {

// Minimal parser for the flat one-line JSON objects JsonlTraceSink
// writes: string or number values only, no nesting, no escapes beyond
// what our own event names need. Strict by design — the schema checker
// should reject anything the library did not write.
class FlatJsonParser {
 public:
  explicit FlatJsonParser(const std::string& line) : s_(line) {}

  void parse(TraceEvent& out, bool& saw_t, bool& saw_ev, bool& saw_id) {
    skip_ws();
    expect('{');
    bool first = true;
    while (true) {
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        break;
      }
      if (!first) {
        expect(',');
        skip_ws();
      }
      first = false;
      const std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      if (key == "ev") {
        const std::string name = parse_string();
        if (!parse_trace_event_name(name, out.type)) {
          throw ParseError("unknown trace event name '" + name + "'");
        }
        saw_ev = true;
      } else {
        const double v = parse_number();
        if (key == "t") {
          out.time = v;
          saw_t = true;
        } else if (key == "id") {
          out.id = static_cast<std::uint64_t>(v);
          saw_id = true;
        } else if (key == "aux") {
          out.aux = static_cast<std::uint64_t>(v);
        } else if (key == "v") {
          out.value = v;
        } else if (key == "v2") {
          out.value2 = v;
        } else {
          throw ParseError("unexpected trace key '" + key + "'");
        }
      }
    }
    skip_ws();
    if (pos_ != s_.size()) throw ParseError("trailing bytes after trace object");
  }

 private:
  char peek() const {
    if (pos_ >= s_.size()) throw ParseError("truncated trace line");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) {
      throw ParseError(std::string("expected '") + c + "' at offset " +
                       std::to_string(pos_));
    }
    ++pos_;
  }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  std::string parse_string() {
    expect('"');
    std::string out;
    while (peek() != '"') {
      if (s_[pos_] == '\\') throw ParseError("escapes not supported in trace strings");
      out.push_back(s_[pos_++]);
    }
    ++pos_;  // closing quote
    return out;
  }
  double parse_number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '-' ||
            s_[pos_] == '+' || s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) throw ParseError("expected a number at offset " +
                                        std::to_string(start));
    char* end = nullptr;
    const std::string text = s_.substr(start, pos_ - start);
    const double v = std::strtod(text.c_str(), &end);
    if (end == nullptr || *end != '\0') throw ParseError("malformed number '" + text + "'");
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

bool parse_trace_line(const std::string& line, TraceEvent& out) {
  std::size_t i = 0;
  while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
  if (i == line.size()) return false;  // blank line

  TraceEvent event;
  bool saw_t = false, saw_ev = false, saw_id = false;
  FlatJsonParser parser(line);
  parser.parse(event, saw_t, saw_ev, saw_id);
  if (!saw_t || !saw_ev || !saw_id) {
    throw ParseError("trace line missing a required key (t/ev/id)");
  }
  out = event;
  return true;
}

std::vector<TraceEvent> read_trace_jsonl(std::istream& in) {
  std::vector<TraceEvent> events;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    try {
      TraceEvent e;
      if (parse_trace_line(line, e)) events.push_back(e);
    } catch (const ParseError& err) {
      throw ParseError("trace line " + std::to_string(lineno) + ": " + err.what());
    }
  }
  return events;
}

}  // namespace gridvc::obs
