#include "obs/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>

#include "obs/log_histogram.hpp"

namespace gridvc::obs {

namespace {

constexpr std::size_t kMaxDepth = 64;
constexpr std::size_t kRingCapacity = 1u << 15;  // samples kept per thread

struct Frame {
  ZoneId zone = 0;
  std::uint64_t start = 0;
  std::uint64_t child = 0;  // ticks spent in direct child zones
};

struct RawSample {
  std::uint64_t start = 0;
  std::uint64_t dur = 0;
  ZoneId zone = 0;
  std::uint32_t depth = 0;
};

struct Agg {
  std::uint64_t count = 0;
  std::uint64_t total = 0;
  std::uint64_t self = 0;
};

struct ProfBuffer {
  std::uint32_t lane = 0;
  std::uint64_t created_seq = 0;
  std::vector<Agg> agg;             // indexed by ZoneId
  std::vector<LogHistogram> hist;   // inclusive duration ticks, by ZoneId
  std::vector<RawSample> ring;      // kRingCapacity entries
  std::size_t ring_pos = 0;
  std::uint64_t pushed = 0;
  Frame stack[kMaxDepth];
  std::size_t depth = 0;

  ProfBuffer() { ring.resize(kRingCapacity); }

  void reset() {
    std::fill(agg.begin(), agg.end(), Agg{});
    for (auto& h : hist) h = LogHistogram{};
    ring_pos = 0;
    pushed = 0;
    depth = 0;
  }
};

struct GlobalState {
  std::mutex m;
  std::vector<std::shared_ptr<ProfBuffer>> buffers;
  std::uint64_t next_seq = 0;
  std::map<std::string, ZoneId> zone_ids;
  std::vector<std::string> zone_names;
  std::uint64_t t0_ticks = 0;
  std::uint64_t t0_steady_ns = 0;
};

GlobalState& state() {
  static GlobalState s;
  return s;
}

thread_local std::shared_ptr<ProfBuffer> t_owner;
thread_local ProfBuffer* t_buf = nullptr;
thread_local std::uint32_t t_lane = 0;

using ClockFn = std::uint64_t (*)();
std::atomic<ClockFn> g_test_clock{nullptr};

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline std::uint64_t read_ticks() {
  const ClockFn fn = g_test_clock.load(std::memory_order_relaxed);
  if (fn) return fn();
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_ia32_rdtsc();
#else
  return steady_ns();
#endif
}

ProfBuffer* create_buffer() {
  auto b = std::make_shared<ProfBuffer>();
  b->lane = t_lane;
  GlobalState& s = state();
  {
    std::lock_guard<std::mutex> lk(s.m);
    b->created_seq = s.next_seq++;
    s.buffers.push_back(b);
  }
  t_owner = b;
  t_buf = b.get();
  return t_buf;
}

void grow_zone_slots(ProfBuffer& b, ZoneId zone) {
  b.agg.resize(zone + 1);
  b.hist.resize(zone + 1);
}

std::uint64_t scale_ticks(std::uint64_t ticks, double ns_per_tick) {
  return static_cast<std::uint64_t>(
      std::llround(static_cast<double>(ticks) * ns_per_tick));
}

}  // namespace

ZoneId Profiler::intern_zone(const std::string& name) {
  GlobalState& s = state();
  std::lock_guard<std::mutex> lk(s.m);
  const auto it = s.zone_ids.find(name);
  if (it != s.zone_ids.end()) return it->second;
  const ZoneId id = static_cast<ZoneId>(s.zone_names.size());
  s.zone_ids.emplace(name, id);
  s.zone_names.push_back(name);
  return id;
}

std::string Profiler::zone_name(ZoneId id) {
  GlobalState& s = state();
  std::lock_guard<std::mutex> lk(s.m);
  return id < s.zone_names.size() ? s.zone_names[id] : "?";
}

void Profiler::enable() {
  GlobalState& s = state();
  std::lock_guard<std::mutex> lk(s.m);
  for (auto& b : s.buffers) b->reset();
  s.t0_ticks = read_ticks();
  s.t0_steady_ns = steady_ns();
  g_enabled.store(true, std::memory_order_release);
}

void Profiler::disable() { g_enabled.store(false, std::memory_order_release); }

void Profiler::set_thread_lane(std::uint32_t lane) {
  t_lane = lane;
  if (t_buf) t_buf->lane = lane;
}

std::uint32_t Profiler::thread_lane() { return t_lane; }

void Profiler::set_clock_for_test(std::uint64_t (*now_fn)()) {
  g_test_clock.store(now_fn, std::memory_order_relaxed);
}

void Profiler::enter(ZoneId zone) {
  ProfBuffer* b = t_buf;
  if (!b) b = create_buffer();
  if (b->depth >= kMaxDepth) {  // beyond capture depth: count the nesting only
    ++b->depth;
    return;
  }
  Frame& f = b->stack[b->depth++];
  f.zone = zone;
  f.child = 0;
  f.start = read_ticks();
}

void Profiler::exit() {
  ProfBuffer* b = t_buf;
  if (!b || b->depth == 0) return;  // epoch reset swallowed the open frame
  if (b->depth > kMaxDepth) {
    --b->depth;
    return;
  }
  const std::uint64_t end = read_ticks();
  Frame& f = b->stack[--b->depth];
  const std::uint64_t dur = end - f.start;
  if (f.zone >= b->agg.size()) grow_zone_slots(*b, f.zone);
  Agg& a = b->agg[f.zone];
  ++a.count;
  a.total += dur;
  a.self += dur - std::min(dur, f.child);
  b->hist[f.zone].observe(static_cast<double>(dur));
  if (b->depth > 0) b->stack[b->depth - 1].child += dur;
  RawSample& sample = b->ring[b->ring_pos];
  sample.start = f.start;
  sample.dur = dur;
  sample.zone = f.zone;
  sample.depth = static_cast<std::uint32_t>(b->depth);
  b->ring_pos = (b->ring_pos + 1) & (kRingCapacity - 1);
  ++b->pushed;
}

ProfileReport Profiler::collect() {
  const bool test_clock = g_test_clock.load(std::memory_order_relaxed) != nullptr;
  const std::uint64_t t1_ticks = read_ticks();
  const std::uint64_t t1_steady = steady_ns();

  GlobalState& s = state();
  std::lock_guard<std::mutex> lk(s.m);

  double ns_per_tick = 1.0;
  if (!test_clock && t1_ticks > s.t0_ticks && t1_steady > s.t0_steady_ns) {
    ns_per_tick = static_cast<double>(t1_steady - s.t0_steady_ns) /
                  static_cast<double>(t1_ticks - s.t0_ticks);
  }

  ProfileReport report;
  report.zone_names = s.zone_names;
  report.span_ns =
      static_cast<double>(t1_ticks - s.t0_ticks) * ns_per_tick;

  // Deterministic buffer order: lane, then registration sequence.
  std::vector<const ProfBuffer*> bufs;
  bufs.reserve(s.buffers.size());
  for (const auto& b : s.buffers) bufs.push_back(b.get());
  std::sort(bufs.begin(), bufs.end(), [](const ProfBuffer* a, const ProfBuffer* b) {
    return a->lane != b->lane ? a->lane < b->lane : a->created_seq < b->created_seq;
  });

  std::vector<Agg> agg(s.zone_names.size());
  std::vector<LogHistogram> hist(s.zone_names.size());
  for (const ProfBuffer* b : bufs) {
    report.lanes = std::max(report.lanes, b->lane + 1);
    report.dropped_samples +=
        b->pushed > kRingCapacity ? b->pushed - kRingCapacity : 0;
    for (std::size_t z = 0; z < b->agg.size(); ++z) {
      agg[z].count += b->agg[z].count;
      agg[z].total += b->agg[z].total;
      agg[z].self += b->agg[z].self;
      hist[z].merge(b->hist[z]);
    }
    const std::size_t kept = static_cast<std::size_t>(
        std::min<std::uint64_t>(b->pushed, kRingCapacity));
    // Oldest-first: the ring cursor points at the oldest retained sample
    // once it has wrapped.
    const std::size_t begin = b->pushed > kRingCapacity ? b->ring_pos : 0;
    for (std::size_t i = 0; i < kept; ++i) {
      const RawSample& raw = b->ring[(begin + i) & (kRingCapacity - 1)];
      ZoneSample out;
      out.start_ns =
          static_cast<double>(raw.start - s.t0_ticks) * ns_per_tick;
      out.dur_ns = static_cast<double>(raw.dur) * ns_per_tick;
      out.zone = raw.zone;
      out.lane = b->lane;
      out.depth = raw.depth;
      report.samples.push_back(out);
    }
  }

  std::stable_sort(report.samples.begin(), report.samples.end(),
                   [](const ZoneSample& a, const ZoneSample& b) {
                     if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                     return a.dur_ns > b.dur_ns;  // parents before children
                   });

  for (std::size_t z = 0; z < agg.size(); ++z) {
    if (agg[z].count == 0) continue;
    ZoneStat stat;
    stat.name = s.zone_names[z];
    stat.count = agg[z].count;
    stat.total_ns = scale_ticks(agg[z].total, ns_per_tick);
    stat.self_ns = scale_ticks(agg[z].self, ns_per_tick);
    stat.p50_ns = hist[z].quantile(0.50) * ns_per_tick;
    stat.p95_ns = hist[z].quantile(0.95) * ns_per_tick;
    stat.p99_ns = hist[z].quantile(0.99) * ns_per_tick;
    report.zones.push_back(std::move(stat));
  }
  std::sort(report.zones.begin(), report.zones.end(),
            [](const ZoneStat& a, const ZoneStat& b) { return a.name < b.name; });
  return report;
}

std::vector<ZoneSample> Profiler::recent_zones_this_thread(std::size_t max_n) {
  std::vector<ZoneSample> out;
  const ProfBuffer* b = t_buf;
  if (!b) return out;
  const bool test_clock = g_test_clock.load(std::memory_order_relaxed) != nullptr;
  const std::uint64_t t1_ticks = read_ticks();
  const std::uint64_t t1_steady = steady_ns();
  std::uint64_t t0_ticks = 0;
  double ns_per_tick = 1.0;
  {
    GlobalState& s = state();
    std::lock_guard<std::mutex> lk(s.m);
    t0_ticks = s.t0_ticks;
    if (!test_clock && t1_ticks > s.t0_ticks && t1_steady > s.t0_steady_ns) {
      ns_per_tick = static_cast<double>(t1_steady - s.t0_steady_ns) /
                    static_cast<double>(t1_ticks - s.t0_ticks);
    }
  }
  const std::size_t kept = static_cast<std::size_t>(
      std::min<std::uint64_t>(b->pushed, kRingCapacity));
  const std::size_t take = std::min(kept, max_n);
  // Walk backwards from the newest sample, then reverse to oldest-first.
  for (std::size_t i = 0; i < take; ++i) {
    const std::size_t slot =
        (b->ring_pos + kRingCapacity - 1 - i) & (kRingCapacity - 1);
    const RawSample& raw = b->ring[slot];
    ZoneSample sample;
    sample.start_ns = static_cast<double>(raw.start - t0_ticks) * ns_per_tick;
    sample.dur_ns = static_cast<double>(raw.dur) * ns_per_tick;
    sample.zone = raw.zone;
    sample.lane = b->lane;
    sample.depth = raw.depth;
    out.push_back(sample);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<ZoneStat> Profiler::totals_this_thread() {
  std::vector<ZoneStat> out;
  const ProfBuffer* b = t_buf;
  if (!b) return out;
  GlobalState& s = state();
  std::lock_guard<std::mutex> lk(s.m);
  for (std::size_t z = 0; z < b->agg.size(); ++z) {
    if (b->agg[z].count == 0) continue;
    ZoneStat stat;
    stat.name = z < s.zone_names.size() ? s.zone_names[z] : "?";
    stat.count = b->agg[z].count;
    stat.total_ns = b->agg[z].total;
    stat.self_ns = b->agg[z].self;
    out.push_back(std::move(stat));
  }
  std::sort(out.begin(), out.end(),
            [](const ZoneStat& a, const ZoneStat& b2) { return a.name < b2.name; });
  return out;
}

std::vector<std::string> Profiler::live_stack_this_thread() {
  std::vector<std::string> out;
  const ProfBuffer* b = t_buf;
  if (!b) return out;
  GlobalState& s = state();
  std::lock_guard<std::mutex> lk(s.m);
  const std::size_t depth = std::min(b->depth, kMaxDepth);
  for (std::size_t i = 0; i < depth; ++i) {
    const ZoneId z = b->stack[i].zone;
    out.push_back(z < s.zone_names.size() ? s.zone_names[z] : "?");
  }
  return out;
}

}  // namespace gridvc::obs
