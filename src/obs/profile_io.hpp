// Profile serialization and reporting.
//
// write_chrome_trace emits a Chrome trace-event JSON file loadable in
// Perfetto / chrome://tracing: one "X" (complete) event per retained
// zone sample, tid = exec lane, plus a "gridvcProfile" top-level key
// carrying the merged per-zone aggregate table so tooling never has to
// re-derive it from the sample timeline. read_profile_* parse that file
// back (a small strict JSON parser; throws ParseError on malformed
// input), and the write_* helpers render the hotspot table, the
// thread-count-invariant digest, and a diff between two profiles.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/profiler.hpp"

namespace gridvc::obs {

/// Minimal JSON document node (subset: no duplicate-key handling; \u
/// escapes outside ASCII decode to '?'). Public so flight-recorder
/// dumps and tests can validate emitted files with the same parser.
struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> array;
  std::vector<std::pair<std::string, Json>> object;

  /// Object member by key; nullptr when absent or not an object.
  const Json* get(const std::string& key) const;
};

/// Parse a complete JSON document. Throws ParseError on malformed input
/// or trailing garbage.
Json parse_json(const std::string& text);

void write_chrome_trace(std::ostream& out, const ProfileReport& report);

ProfileReport read_profile_json(const std::string& text);
/// Throws ParseError (parse failure) or PreconditionError (unreadable file).
ProfileReport read_profile_file(const std::string& path);

/// Flat top-N hotspot table, self-time descending (ties by name).
void write_hotspots(std::ostream& out, const ProfileReport& report,
                    std::size_t top_n = 20);

/// One "name count" line per zone, sorted by name. Call counts are
/// thread-count-invariant under the exec determinism contract, so this
/// digest is byte-identical across --threads for the same workload.
void write_profile_digest(std::ostream& out, const ProfileReport& report);

/// Signed per-zone deltas (after - before), largest |self| change first.
void write_profile_diff(std::ostream& out, const ProfileReport& before,
                        const ProfileReport& after, std::size_t top_n = 20);

/// Collect the live profiler state and write it to `path`; reports a
/// one-line summary (or the failure) on `diag`. Returns success.
bool dump_profile(const std::string& path, std::ostream& diag);

/// Tool helper: arm() enables the profiler; the destructor (or an early
/// finish()) collects and writes the file. Safe to destroy unarmed.
class ProfileScope {
 public:
  ProfileScope() = default;
  ~ProfileScope() { finish(); }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

  void arm(std::string path) {
    path_ = std::move(path);
    Profiler::enable();
  }
  bool finish();

 private:
  std::string path_;
};

}  // namespace gridvc::obs
