#include "obs/timeline.hpp"

namespace gridvc::obs {

std::size_t Timelines::finished_transfers() const {
  std::size_t n = 0;
  for (const auto& [id, t] : transfers) {
    if (t.finished) ++n;
  }
  return n;
}

Timelines build_timelines(const std::vector<TraceEvent>& events) {
  Timelines out;
  for (const TraceEvent& e : events) {
    switch (e.type) {
      case TraceEventType::kTransferSubmitted: {
        TransferTimeline& t = out.transfers[e.id];
        t.id = e.id;
        t.submitted = true;
        t.submit_time = e.time;
        t.bytes = static_cast<Bytes>(e.value);
        t.stripes = e.aux;
        t.streams = static_cast<std::uint64_t>(e.value2);
        break;
      }
      case TraceEventType::kTransferStarted: {
        TransferTimeline& t = out.transfers[e.id];
        t.id = e.id;
        t.started = true;
        t.start_time = e.time;
        t.queue_wait = e.value;
        break;
      }
      case TraceEventType::kTransferStripeCompleted: {
        TransferTimeline& t = out.transfers[e.id];
        t.id = e.id;
        ++t.stripes_completed;
        break;
      }
      case TraceEventType::kTransferRetry: {
        TransferTimeline& t = out.transfers[e.id];
        t.id = e.id;
        ++t.retries;
        break;
      }
      case TraceEventType::kTransferFinished: {
        TransferTimeline& t = out.transfers[e.id];
        t.id = e.id;
        t.finished = true;
        t.finish_time = e.time;
        if (t.bytes == 0) t.bytes = static_cast<Bytes>(e.value2);
        break;
      }
      case TraceEventType::kVcRequested: {
        CircuitTimeline& c = out.circuits[e.id];
        c.id = e.id;
        c.requested = true;
        c.request_time = e.time;
        c.bandwidth = e.value;
        break;
      }
      case TraceEventType::kVcGranted: {
        CircuitTimeline& c = out.circuits[e.id];
        c.id = e.id;
        c.granted = true;
        c.predicted_setup_delay = e.value;
        break;
      }
      case TraceEventType::kVcRejected: {
        CircuitTimeline& c = out.circuits[e.id];
        c.id = e.id;
        c.rejected = true;
        c.reject_reason = e.aux;
        break;
      }
      case TraceEventType::kVcActivated: {
        CircuitTimeline& c = out.circuits[e.id];
        c.id = e.id;
        c.activated = true;
        c.activate_time = e.time;
        c.setup_delay = e.value;
        break;
      }
      case TraceEventType::kVcReleased: {
        CircuitTimeline& c = out.circuits[e.id];
        c.id = e.id;
        c.released = true;
        c.release_time = e.time;
        break;
      }
      case TraceEventType::kVcCancelled: {
        CircuitTimeline& c = out.circuits[e.id];
        c.id = e.id;
        c.cancelled = true;
        break;
      }
      case TraceEventType::kVcFailed: {
        CircuitTimeline& c = out.circuits[e.id];
        c.id = e.id;
        c.failed = true;
        c.fail_time = e.time;
        break;
      }
      case TraceEventType::kTransferAborted: {
        TransferTimeline& t = out.transfers[e.id];
        t.id = e.id;
        ++t.aborts;
        if (e.value2 != 0.0) t.permanently_failed = true;
        break;
      }
      case TraceEventType::kTaskSubmitted:
      case TraceEventType::kTaskStarted:
      case TraceEventType::kTaskFinished:
      case TraceEventType::kSessionOpened:
      case TraceEventType::kSessionClosed:
      case TraceEventType::kNetRecompute:
      case TraceEventType::kLinkDown:
      case TraceEventType::kLinkUp:
      case TraceEventType::kServerDown:
      case TraceEventType::kServerUp:
      case TraceEventType::kIdcOutageBegin:
      case TraceEventType::kIdcOutageEnd:
      case TraceEventType::kTaskShed:
      case TraceEventType::kJournalReplay:
      case TraceEventType::kVcSegmentBooked:
      case TraceEventType::kVcSegmentRollback:
      case TraceEventType::kFrontSessionOpened:
      case TraceEventType::kFrontSessionClosed:
      case TraceEventType::kFrontSubmit:
      case TraceEventType::kFrontReject:
      case TraceEventType::kFrontDispatch:
      case TraceEventType::kFrontShed:
      case TraceEventType::kFrontCancel:
        break;  // not part of the per-transfer/per-circuit timelines
    }
  }
  return out;
}

}  // namespace gridvc::obs
