// Scoped wall-clock zone profiler.
//
// Instrumented code declares zones with GRIDVC_PROF_ZONE("net.recompute");
// each zone is an RAII scope timed with the TSC (x86-64) or steady_clock,
// recorded into a per-thread buffer: an aggregate table (call count,
// inclusive/exclusive time, a LogHistogram of inclusive durations) plus a
// bounded ring of recent samples for timeline export. Zone names are
// interned once per call site into small dense ids, so the enabled hot
// path is two clock reads and a few array stores; when the profiler is
// disabled it is a single relaxed atomic load, and building with
// GRIDVC_PROF_DISABLED (cmake -DGRIDVC_PROFILING=OFF) compiles the macro
// away entirely.
//
// Threading: per-thread buffers register themselves in a global list,
// keyed by a lane id the exec thread pool assigns (caller = lane 0,
// worker i = lane i + 1). enable() and collect() must run while no other
// thread is inside a zone — in practice after Simulator::run() or a
// chaos battery returns, when pool workers are parked; parallel_for's
// completion handshake makes the workers' buffer writes visible. Because
// the exec layer guarantees the same region bodies run regardless of
// thread count, per-zone call counts — and therefore the merged profile
// digest — are byte-identical at any --threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace gridvc::obs {

using ZoneId = std::uint32_t;

/// Merged cost of one zone name across every thread buffer.
struct ZoneStat {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;  ///< inclusive: children counted
  std::uint64_t self_ns = 0;   ///< exclusive: direct child zones subtracted
  double p50_ns = 0.0;         ///< inclusive-duration quantiles (log-bucket)
  double p95_ns = 0.0;
  double p99_ns = 0.0;
};

/// One completed zone instance from a bounded per-thread sample ring.
struct ZoneSample {
  double start_ns = 0.0;  ///< relative to the enable() epoch
  double dur_ns = 0.0;
  ZoneId zone = 0;
  std::uint32_t lane = 0;
  std::uint32_t depth = 0;  ///< nesting depth at entry (0 = top level)
};

struct ProfileReport {
  std::vector<ZoneStat> zones;          ///< sorted by name
  std::vector<ZoneSample> samples;      ///< sorted by start time
  std::vector<std::string> zone_names;  ///< ZoneId -> name for samples
  std::uint64_t dropped_samples = 0;    ///< ring overwrites across all threads
  std::uint32_t lanes = 0;              ///< highest lane seen + 1
  double span_ns = 0.0;                 ///< enable() -> collect() wall span
};

class Profiler {
 public:
  /// Intern a zone name (stable for process lifetime). Called once per
  /// GRIDVC_PROF_ZONE site through a function-local static.
  static ZoneId intern_zone(const std::string& name);
  /// Interned name for an id; "?" when out of range.
  static std::string zone_name(ZoneId id);

  /// Reset every thread buffer and start recording. Quiescence required
  /// (no thread inside a zone).
  static void enable();
  /// Stop recording; buffers keep their contents for collect().
  static void disable();
  static bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

  /// Merge all thread buffers into one report. Quiescence required.
  static ProfileReport collect();

  /// Label the calling thread for merge ordering and timeline tids.
  /// The exec pool assigns worker i -> lane i + 1; lane 0 is the caller.
  static void set_thread_lane(std::uint32_t lane);
  static std::uint32_t thread_lane();

  /// Test hook: substitute the tick source; returned ticks are taken as
  /// nanoseconds verbatim (no TSC calibration). nullptr restores the
  /// real clock. A constant-clock fake makes whole reports deterministic.
  static void set_clock_for_test(std::uint64_t (*now_fn)());

  /// Recent completed zones on the calling thread, oldest first (flight
  /// recorder context; reads only thread-local state, always race-free).
  static std::vector<ZoneSample> recent_zones_this_thread(std::size_t max_n);
  /// Zone names currently open on the calling thread, outermost first.
  static std::vector<std::string> live_stack_this_thread();
  /// Per-zone totals accumulated on the calling thread (quantiles left
  /// zero; times in raw ticks under the real clock — context, not data).
  static std::vector<ZoneStat> totals_this_thread();

  // ProfZone internals — not for direct use.
  static void enter(ZoneId zone);
  static void exit();

 private:
  inline static std::atomic<bool> g_enabled{false};
};

/// RAII zone scope. Captures the enabled flag at entry so a zone that
/// straddles disable() still balances its exit.
class ProfZone {
 public:
  explicit ProfZone(ZoneId zone) : armed_(Profiler::enabled()) {
    if (armed_) Profiler::enter(zone);
  }
  ~ProfZone() {
    if (armed_) Profiler::exit();
  }
  ProfZone(const ProfZone&) = delete;
  ProfZone& operator=(const ProfZone&) = delete;

 private:
  bool armed_;
};

#ifdef GRIDVC_PROF_DISABLED
#define GRIDVC_PROF_ZONE(name) ((void)0)
#else
#define GRIDVC_PROF_CAT2(a, b) a##b
#define GRIDVC_PROF_CAT(a, b) GRIDVC_PROF_CAT2(a, b)
#define GRIDVC_PROF_ZONE(name)                                              \
  static const ::gridvc::obs::ZoneId GRIDVC_PROF_CAT(                       \
      gridvc_prof_zone_id_, __LINE__) =                                     \
      ::gridvc::obs::Profiler::intern_zone(name);                           \
  const ::gridvc::obs::ProfZone GRIDVC_PROF_CAT(gridvc_prof_zone_,          \
                                                __LINE__)(                  \
      GRIDVC_PROF_CAT(gridvc_prof_zone_id_, __LINE__))
#endif

}  // namespace gridvc::obs
