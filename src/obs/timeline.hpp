// Per-transfer and per-circuit timeline reconstruction from a trace.
//
// Given the event stream a run emitted (from a JSONL file or a ring
// buffer), rebuild each transfer's submit -> start -> finish timeline
// with queue-wait attribution, and each circuit's request -> grant ->
// activate -> release lifecycle with setup-delay attribution. This is
// the "why was this transfer slow / this circuit rejected" query the
// paper answers from GridFTP logs and SNMP counters, asked of our own
// runs.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/units.hpp"
#include "obs/trace.hpp"

namespace gridvc::obs {

struct TransferTimeline {
  std::uint64_t id = 0;
  bool submitted = false, started = false, finished = false;
  Seconds submit_time = 0.0;
  Seconds start_time = 0.0;   ///< first bytes on the wire
  Seconds finish_time = 0.0;
  Seconds queue_wait = 0.0;   ///< submit -> start (slow-start ramp + service queue)
  Bytes bytes = 0;
  std::uint64_t stripes = 0;
  std::uint64_t streams = 0;
  std::uint64_t stripes_completed = 0;
  std::uint64_t retries = 0;
  std::uint64_t aborts = 0;        ///< attempts killed by a link failure
  bool permanently_failed = false; ///< gave up after too many aborts

  Seconds duration() const { return finished ? finish_time - submit_time : 0.0; }
  bool complete() const { return submitted && started && finished; }
};

struct CircuitTimeline {
  std::uint64_t id = 0;
  bool requested = false, granted = false, rejected = false;
  bool activated = false, released = false, cancelled = false;
  bool failed = false;             ///< lost its path mid-lifetime (kVcFailed)
  Seconds request_time = 0.0;
  Seconds activate_time = 0.0;
  Seconds release_time = 0.0;
  Seconds fail_time = 0.0;
  Seconds predicted_setup_delay = 0.0;  ///< grant-time estimate
  Seconds setup_delay = 0.0;            ///< observed request -> active
  std::uint64_t reject_reason = 0;      ///< vc::RejectReason as integer
  BitsPerSecond bandwidth = 0.0;
};

struct Timelines {
  std::map<std::uint64_t, TransferTimeline> transfers;
  std::map<std::uint64_t, CircuitTimeline> circuits;

  std::size_t finished_transfers() const;
};

/// Fold an event stream (chronological order expected) into timelines.
/// Unknown-to-timeline event types (recomputes, task events) are ignored.
Timelines build_timelines(const std::vector<TraceEvent>& events);

}  // namespace gridvc::obs
