#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "obs/profiler.hpp"

namespace gridvc::obs {

namespace {

struct EventRing {
  std::mutex m;  // record() vs a dumping thread's snapshot
  std::uint32_t lane = 0;
  std::uint64_t created_seq = 0;
  std::vector<TraceEvent> ring;
  std::size_t pos = 0;
  std::uint64_t pushed = 0;
};

struct RecorderState {
  std::mutex m;  // registry + arm/dump bookkeeping
  std::vector<std::shared_ptr<EventRing>> rings;
  std::uint64_t next_seq = 0;
  std::string path;
  std::size_t capacity = 512;
  std::atomic<std::uint64_t> arm_epoch{0};  // read unlocked in record()
  std::uint64_t dumps = 0;
};

RecorderState& state() {
  static RecorderState s;
  return s;
}

thread_local std::shared_ptr<EventRing> t_owner;
thread_local EventRing* t_ring = nullptr;
thread_local std::uint64_t t_epoch = 0;

std::string fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

void write_escaped(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\' << c;
    else if (static_cast<unsigned char>(c) < 0x20) out << ' ';
    else out << c;
  }
  out << '"';
}

}  // namespace

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::arm(std::string path, std::size_t per_thread_capacity) {
  RecorderState& s = state();
  std::lock_guard<std::mutex> lk(s.m);
  s.path = std::move(path);
  s.capacity = std::max<std::size_t>(1, per_thread_capacity);
  // Existing rings lazily reset on their next record().
  s.arm_epoch.fetch_add(1, std::memory_order_release);
  g_armed.store(true, std::memory_order_release);
}

void FlightRecorder::disarm() {
  g_armed.store(false, std::memory_order_release);
}

void FlightRecorder::record(const TraceEvent& event) {
  EventRing* r = t_ring;
  RecorderState& s = state();
  if (!r) {
    auto ring = std::make_shared<EventRing>();
    ring->lane = Profiler::thread_lane();
    std::lock_guard<std::mutex> lk(s.m);
    ring->created_seq = s.next_seq++;
    ring->ring.resize(s.capacity);
    s.rings.push_back(ring);
    t_owner = ring;
    t_ring = ring.get();
    t_epoch = s.arm_epoch.load(std::memory_order_relaxed);
    r = t_ring;
  } else if (t_epoch != s.arm_epoch.load(std::memory_order_acquire)) {
    // Re-armed since this thread last recorded: drop the stale window.
    std::size_t capacity;
    std::uint64_t epoch;
    {
      std::lock_guard<std::mutex> lk(s.m);
      capacity = s.capacity;
      epoch = s.arm_epoch.load(std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> lk(r->m);
    r->ring.assign(capacity, TraceEvent{});
    r->pos = 0;
    r->pushed = 0;
    t_epoch = epoch;
  }
  std::lock_guard<std::mutex> lk(r->m);
  r->lane = Profiler::thread_lane();
  r->ring[r->pos] = event;
  r->pos = (r->pos + 1) % r->ring.size();
  ++r->pushed;
}

void FlightRecorder::dump_to(std::ostream& out, const std::string& reason) {
  RecorderState& s = state();
  std::uint64_t dump_index;
  std::vector<std::shared_ptr<EventRing>> rings;
  {
    std::lock_guard<std::mutex> lk(s.m);
    dump_index = ++s.dumps;
    rings = s.rings;
  }
  std::sort(rings.begin(), rings.end(),
            [](const std::shared_ptr<EventRing>& a,
               const std::shared_ptr<EventRing>& b) {
              if (a->lane != b->lane) return a->lane < b->lane;
              return a->created_seq < b->created_seq;
            });

  out << "{\n\"flightRecorder\": {\n";
  out << "\"reason\": ";
  write_escaped(out, reason);
  out << ",\n\"dumpIndex\": " << dump_index << ",\n";

  // Zone context of the thread that hit the failure.
  out << "\"thread\": {\"lane\": " << Profiler::thread_lane()
      << ", \"liveZones\": [";
  const std::vector<std::string> live = Profiler::live_stack_this_thread();
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (i) out << ", ";
    write_escaped(out, live[i]);
  }
  out << "], \"recentZones\": [";
  const std::vector<ZoneSample> recent = Profiler::recent_zones_this_thread(64);
  for (std::size_t i = 0; i < recent.size(); ++i) {
    const ZoneSample& z = recent[i];
    out << (i == 0 ? "\n" : ",\n") << "{\"name\": ";
    write_escaped(out, Profiler::zone_name(z.zone));
    out << ", \"start_ns\": " << fixed(z.start_ns, 1)
        << ", \"dur_ns\": " << fixed(z.dur_ns, 1) << ", \"depth\": " << z.depth
        << "}";
  }
  out << (recent.empty() ? "]" : "\n]") << "},\n";

  out << "\"zoneTotals\": [";
  const std::vector<ZoneStat> totals = Profiler::totals_this_thread();
  for (std::size_t i = 0; i < totals.size(); ++i) {
    const ZoneStat& z = totals[i];
    out << (i == 0 ? "\n" : ",\n") << "{\"name\": ";
    write_escaped(out, z.name);
    out << ", \"count\": " << z.count << ", \"total_ticks\": " << z.total_ns
        << ", \"self_ticks\": " << z.self_ns << "}";
  }
  out << (totals.empty() ? "]" : "\n]") << ",\n";

  out << "\"traceEvents\": [";
  bool first = true;
  for (const auto& ring : rings) {
    std::vector<TraceEvent> events;
    std::uint64_t pushed;
    std::uint32_t lane;
    {
      std::lock_guard<std::mutex> lk(ring->m);
      lane = ring->lane;
      pushed = ring->pushed;
      const std::size_t cap = ring->ring.size();
      const std::size_t kept =
          static_cast<std::size_t>(std::min<std::uint64_t>(pushed, cap));
      const std::size_t begin = pushed > cap ? ring->pos : 0;
      events.reserve(kept);
      for (std::size_t i = 0; i < kept; ++i) {
        events.push_back(ring->ring[(begin + i) % cap]);
      }
    }
    for (const TraceEvent& e : events) {
      out << (first ? "\n" : ",\n") << "{\"lane\": " << lane << ", \"t\": "
          << fixed(e.time, 6) << ", \"ev\": ";
      write_escaped(out, trace_event_name(e.type));
      out << ", \"id\": " << e.id << ", \"aux\": " << e.aux << ", \"v\": "
          << fixed(e.value, 6) << ", \"v2\": " << fixed(e.value2, 6) << "}";
      first = false;
    }
    (void)pushed;
  }
  out << (first ? "]" : "\n]") << "\n}\n}\n";
}

bool FlightRecorder::dump(const std::string& reason) {
  if (!armed()) return false;
  static std::mutex dump_m;  // serialize concurrent failure dumps
  std::lock_guard<std::mutex> lk(dump_m);
  std::string path;
  {
    RecorderState& s = state();
    std::lock_guard<std::mutex> slk(s.m);
    path = s.path;
  }
  if (path.empty()) return false;
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  dump_to(out, reason);
  out.flush();
  return static_cast<bool>(out);
}

std::uint64_t FlightRecorder::dump_count() const {
  RecorderState& s = state();
  std::lock_guard<std::mutex> lk(s.m);
  return s.dumps;
}

std::string FlightRecorder::path() const {
  RecorderState& s = state();
  std::lock_guard<std::mutex> lk(s.m);
  return s.path;
}

}  // namespace gridvc::obs
