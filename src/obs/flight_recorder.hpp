// Crash flight recorder.
//
// When armed, every TraceEvent passing through an Observability context
// is also copied into a bounded per-thread ring, and a dump can be
// triggered at any failure point (chaos invariant violations,
// TransferService::crash_and_recover) to capture "what was the system
// doing": the most recent trace events from every thread, plus the
// calling thread's live zone stack, recent completed zones, and per-zone
// totals from the profiler. The dump is written as JSON to the armed
// path (later dumps overwrite earlier ones, so the file always holds the
// most recent failure).
//
// Recording costs one relaxed atomic load when disarmed. When armed,
// each event takes an uncontended per-thread mutex so a dumping thread
// can snapshot other threads' rings without a data race; zone context in
// the dump is deliberately restricted to the dumping thread's own
// buffer, which needs no synchronization at all.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "obs/trace.hpp"

namespace gridvc::obs {

class FlightRecorder {
 public:
  static FlightRecorder& instance();

  /// Start mirroring trace events into per-thread rings; dumps go to
  /// `path`. Re-arming clears previously retained events.
  void arm(std::string path, std::size_t per_thread_capacity = 512);
  void disarm();
  static bool armed() { return g_armed.load(std::memory_order_relaxed); }

  /// Hot-path hook, called by Observability::emit when armed.
  void record(const TraceEvent& event);

  /// Write a dump to the armed path. Returns false when disarmed or the
  /// file cannot be written. Thread-safe; concurrent dumps serialize.
  bool dump(const std::string& reason);
  void dump_to(std::ostream& out, const std::string& reason);

  std::uint64_t dump_count() const;
  std::string path() const;

 private:
  FlightRecorder() = default;
  inline static std::atomic<bool> g_armed{false};
};

}  // namespace gridvc::obs
