// HDR-style log-bucket histogram.
//
// Buckets are derived from the IEEE-754 bit pattern of the observed
// value: the exponent selects an octave and the top kSubBucketBits
// mantissa bits split the octave into equal-width sub-buckets. Because
// positive doubles order the same as their bit patterns, the bucket
// index is a shift — no search, no per-histogram bound table — and any
// value in a bucket is within a factor of 2^-kSubBucketBits of the
// bucket edges, which bounds the relative error of reported quantiles.
//
// Storage is a dense count array over the index range actually observed
// (grown on demand), so a histogram spanning nanoseconds to hours costs
// a few KB, not the full 2^16-entry index space.
//
// Not thread-safe; same single-writer contract as MetricsRegistry.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

namespace gridvc::obs {

class LogHistogram {
 public:
  /// Sub-bucket resolution: 2^5 = 32 linear buckets per octave, so a
  /// reported quantile is within 1/32 (~3.1%) of the exact order
  /// statistic it stands in for.
  static constexpr unsigned kSubBucketBits = 5;

  void observe(double v) {
    sum_ += v;
    ++total_;
    if (!(v > 0.0)) {  // zero, negative, or NaN: no log bucket exists
      ++underflow_;
      return;
    }
    const std::uint32_t idx = bucket_index(v);
    if (counts_.empty()) {
      base_ = idx;
      counts_.push_back(0);
    } else if (idx < base_) {
      counts_.insert(counts_.begin(), base_ - idx, 0);
      base_ = idx;
    } else if (idx >= base_ + counts_.size()) {
      counts_.resize(idx - base_ + 1, 0);
    }
    ++counts_[idx - base_];
  }

  std::uint64_t total() const { return total_; }
  std::uint64_t underflow() const { return underflow_; }
  double sum() const { return sum_; }

  /// Quantile over the positive observations (midpoint of the bucket the
  /// rank lands in); 0 when nothing positive was observed. Underflow
  /// observations (v <= 0) are excluded — they carry no magnitude.
  double quantile(double q) const {
    const std::uint64_t n = total_ - underflow_;
    if (n == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const std::uint64_t rank =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n))));
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      cumulative += counts_[i];
      if (cumulative >= rank) {
        const std::uint32_t idx = base_ + static_cast<std::uint32_t>(i);
        const double lo = bucket_lower(idx);
        const double hi = bucket_upper(idx);
        return std::isfinite(hi) ? (lo + hi) * 0.5 : lo;
      }
    }
    return bucket_upper(base_ + static_cast<std::uint32_t>(counts_.size()) - 1);
  }

  void merge(const LogHistogram& other) {
    sum_ += other.sum_;
    total_ += other.total_;
    underflow_ += other.underflow_;
    if (other.counts_.empty()) return;
    if (counts_.empty()) {
      base_ = other.base_;
      counts_ = other.counts_;
      return;
    }
    const std::uint32_t lo = std::min(base_, other.base_);
    const std::uint32_t hi =
        std::max(base_ + static_cast<std::uint32_t>(counts_.size()),
                 other.base_ + static_cast<std::uint32_t>(other.counts_.size()));
    if (lo < base_) {
      counts_.insert(counts_.begin(), base_ - lo, 0);
      base_ = lo;
    }
    if (hi > base_ + counts_.size()) counts_.resize(hi - base_, 0);
    for (std::size_t i = 0; i < other.counts_.size(); ++i) {
      counts_[other.base_ - base_ + i] += other.counts_[i];
    }
  }

  /// Non-empty buckets, ascending; used by snapshot/export code.
  struct Bucket {
    double lower = 0.0;
    double upper = 0.0;
    std::uint64_t count = 0;
  };
  std::vector<Bucket> buckets() const {
    std::vector<Bucket> out;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      if (counts_[i] == 0) continue;
      const std::uint32_t idx = base_ + static_cast<std::uint32_t>(i);
      out.push_back(Bucket{bucket_lower(idx), bucket_upper(idx), counts_[i]});
    }
    return out;
  }

  /// Bit-scan bucket index for a positive double: exponent plus the top
  /// mantissa bits, monotone in v.
  static std::uint32_t bucket_index(double v) {
    const auto bits = std::bit_cast<std::uint64_t>(v);
    return static_cast<std::uint32_t>(bits >> (52 - kSubBucketBits));
  }
  static double bucket_lower(std::uint32_t idx) {
    return std::bit_cast<double>(static_cast<std::uint64_t>(idx) << (52 - kSubBucketBits));
  }
  static double bucket_upper(std::uint32_t idx) { return bucket_lower(idx + 1); }

 private:
  std::vector<std::uint64_t> counts_;  // dense over [base_, base_ + size)
  std::uint32_t base_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t underflow_ = 0;
  double sum_ = 0.0;
};

}  // namespace gridvc::obs
