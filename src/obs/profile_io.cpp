#include "obs/profile_io.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace gridvc::obs {

namespace {

// --- JSON writing ----------------------------------------------------------

void write_escaped(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

// Fixed-precision formatting keeps the files deterministic across
// locales and iostream state.
std::string fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

// --- JSON parsing ----------------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (i_ != s_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("profile JSON, offset " + std::to_string(i_) + ": " + what);
  }

  void skip_ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\n' ||
                              s_[i_] == '\r')) {
      ++i_;
    }
  }

  char peek() {
    if (i_ >= s_.size()) fail("unexpected end of input");
    return s_[i_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++i_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(i_, n, lit) != 0) return false;
    i_ += n;
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Json v;
        v.type = Json::Type::kString;
        v.str = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json{};
      default: return parse_number();
    }
  }

  static Json make_bool(bool b) {
    Json v;
    v.type = Json::Type::kBool;
    v.boolean = b;
    return v;
  }

  Json parse_object() {
    Json v;
    v.type = Json::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++i_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++i_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Json parse_array() {
    Json v;
    v.type = Json::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++i_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++i_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (i_ >= s_.size()) fail("unterminated string");
      const char c = s_[i_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (i_ >= s_.size()) fail("unterminated escape");
      const char e = s_[i_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (i_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = s_[i_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = i_;
    if (i_ < s_.size() && s_[i_] == '-') ++i_;
    while (i_ < s_.size() && (std::isdigit(static_cast<unsigned char>(s_[i_])) ||
                              s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
                              s_[i_] == '+' || s_[i_] == '-')) {
      ++i_;
    }
    if (i_ == start) fail("expected a value");
    Json v;
    v.type = Json::Type::kNumber;
    try {
      v.number = std::stod(s_.substr(start, i_ - start));
    } catch (const std::exception&) {
      fail("bad number");
    }
    return v;
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

double num_field(const Json& obj, const std::string& key) {
  const Json* v = obj.get(key);
  if (!v || v->type != Json::Type::kNumber) {
    throw ParseError("profile JSON: missing numeric field '" + key + "'");
  }
  return v->number;
}

std::string str_field(const Json& obj, const std::string& key) {
  const Json* v = obj.get(key);
  if (!v || v->type != Json::Type::kString) {
    throw ParseError("profile JSON: missing string field '" + key + "'");
  }
  return v->str;
}

}  // namespace

const Json* Json::get(const std::string& key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json parse_json(const std::string& text) {
  return JsonParser(text).parse_document();
}

void write_chrome_trace(std::ostream& out, const ProfileReport& report) {
  out << "{\n";
  out << "\"displayTimeUnit\": \"ms\",\n";
  out << "\"gridvcMeta\": {\"lanes\": " << report.lanes
      << ", \"droppedSamples\": " << report.dropped_samples
      << ", \"spanNs\": " << fixed(report.span_ns, 1)
      << ", \"zoneCount\": " << report.zones.size()
      << ", \"sampleCount\": " << report.samples.size() << "},\n";
  out << "\"gridvcProfile\": [";
  for (std::size_t i = 0; i < report.zones.size(); ++i) {
    const ZoneStat& z = report.zones[i];
    out << (i == 0 ? "\n" : ",\n") << "{\"name\": ";
    write_escaped(out, z.name);
    out << ", \"count\": " << z.count << ", \"total_ns\": " << z.total_ns
        << ", \"self_ns\": " << z.self_ns << ", \"p50_ns\": " << fixed(z.p50_ns, 1)
        << ", \"p95_ns\": " << fixed(z.p95_ns, 1)
        << ", \"p99_ns\": " << fixed(z.p99_ns, 1) << "}";
  }
  out << "\n],\n";
  out << "\"traceEvents\": [";
  bool first = true;
  for (std::uint32_t lane = 0; lane < report.lanes; ++lane) {
    out << (first ? "\n" : ",\n")
        << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": " << lane
        << ", \"args\": {\"name\": \"lane " << lane << "\"}}";
    first = false;
  }
  for (const ZoneSample& sample : report.samples) {
    out << (first ? "\n" : ",\n") << "{\"name\": ";
    write_escaped(out, sample.zone < report.zone_names.size()
                           ? report.zone_names[sample.zone]
                           : "?");
    // Chrome trace timestamps are microseconds.
    out << ", \"cat\": \"gridvc\", \"ph\": \"X\", \"ts\": "
        << fixed(sample.start_ns / 1000.0, 3) << ", \"dur\": "
        << fixed(sample.dur_ns / 1000.0, 3) << ", \"pid\": 1, \"tid\": "
        << sample.lane << ", \"args\": {\"depth\": " << sample.depth << "}}";
    first = false;
  }
  out << "\n]\n}\n";
}

ProfileReport read_profile_json(const std::string& text) {
  const Json doc = parse_json(text);
  if (doc.type != Json::Type::kObject) {
    throw ParseError("profile JSON: document is not an object");
  }
  const Json* zones = doc.get("gridvcProfile");
  if (!zones || zones->type != Json::Type::kArray) {
    throw ParseError("profile JSON: missing gridvcProfile array");
  }
  ProfileReport report;
  std::map<std::string, ZoneId> ids;
  for (const Json& z : zones->array) {
    ZoneStat stat;
    stat.name = str_field(z, "name");
    stat.count = static_cast<std::uint64_t>(num_field(z, "count"));
    stat.total_ns = static_cast<std::uint64_t>(num_field(z, "total_ns"));
    stat.self_ns = static_cast<std::uint64_t>(num_field(z, "self_ns"));
    stat.p50_ns = num_field(z, "p50_ns");
    stat.p95_ns = num_field(z, "p95_ns");
    stat.p99_ns = num_field(z, "p99_ns");
    ids.emplace(stat.name, static_cast<ZoneId>(report.zone_names.size()));
    report.zone_names.push_back(stat.name);
    report.zones.push_back(std::move(stat));
  }
  if (const Json* meta = doc.get("gridvcMeta")) {
    report.lanes = static_cast<std::uint32_t>(num_field(*meta, "lanes"));
    report.dropped_samples =
        static_cast<std::uint64_t>(num_field(*meta, "droppedSamples"));
    report.span_ns = num_field(*meta, "spanNs");
  }
  const Json* events = doc.get("traceEvents");
  if (!events || events->type != Json::Type::kArray) {
    throw ParseError("profile JSON: missing traceEvents array");
  }
  for (const Json& e : events->array) {
    const Json* ph = e.get("ph");
    if (!ph || ph->str != "X") continue;  // metadata events
    ZoneSample sample;
    sample.start_ns = num_field(e, "ts") * 1000.0;
    sample.dur_ns = num_field(e, "dur") * 1000.0;
    sample.lane = static_cast<std::uint32_t>(num_field(e, "tid"));
    const std::string name = str_field(e, "name");
    const auto it = ids.find(name);
    if (it == ids.end()) {
      // Sample for a zone absent from the aggregate table: tolerated so
      // hand-edited traces still load, but it gets a fresh id.
      ids.emplace(name, static_cast<ZoneId>(report.zone_names.size()));
      report.zone_names.push_back(name);
      sample.zone = ids.at(name);
    } else {
      sample.zone = it->second;
    }
    if (const Json* args = e.get("args")) {
      if (const Json* depth = args->get("depth")) {
        sample.depth = static_cast<std::uint32_t>(depth->number);
      }
    }
    report.samples.push_back(sample);
  }
  return report;
}

ProfileReport read_profile_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GRIDVC_REQUIRE(in.good(), "cannot open profile file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return read_profile_json(buf.str());
}

void write_hotspots(std::ostream& out, const ProfileReport& report,
                    std::size_t top_n) {
  std::vector<const ZoneStat*> order;
  order.reserve(report.zones.size());
  for (const ZoneStat& z : report.zones) order.push_back(&z);
  std::sort(order.begin(), order.end(), [](const ZoneStat* a, const ZoneStat* b) {
    if (a->self_ns != b->self_ns) return a->self_ns > b->self_ns;
    return a->name < b->name;
  });
  if (order.size() > top_n) order.resize(top_n);
  out << "  self(ms)  total(ms)      count   p50(us)   p95(us)   p99(us)  zone\n";
  for (const ZoneStat* z : order) {
    char line[256];
    std::snprintf(line, sizeof line,
                  "%10.3f %10.3f %10llu %9.3f %9.3f %9.3f  %s\n",
                  static_cast<double>(z->self_ns) / 1e6,
                  static_cast<double>(z->total_ns) / 1e6,
                  static_cast<unsigned long long>(z->count), z->p50_ns / 1e3,
                  z->p95_ns / 1e3, z->p99_ns / 1e3, z->name.c_str());
    out << line;
  }
}

void write_profile_digest(std::ostream& out, const ProfileReport& report) {
  for (const ZoneStat& z : report.zones) {
    out << z.name << ' ' << z.count << '\n';
  }
}

void write_profile_diff(std::ostream& out, const ProfileReport& before,
                        const ProfileReport& after, std::size_t top_n) {
  struct Delta {
    std::string name;
    double d_self = 0.0, d_total = 0.0;
    std::int64_t d_count = 0;
  };
  std::map<std::string, Delta> by_name;
  for (const ZoneStat& z : before.zones) {
    Delta& d = by_name[z.name];
    d.name = z.name;
    d.d_self -= static_cast<double>(z.self_ns);
    d.d_total -= static_cast<double>(z.total_ns);
    d.d_count -= static_cast<std::int64_t>(z.count);
  }
  for (const ZoneStat& z : after.zones) {
    Delta& d = by_name[z.name];
    d.name = z.name;
    d.d_self += static_cast<double>(z.self_ns);
    d.d_total += static_cast<double>(z.total_ns);
    d.d_count += static_cast<std::int64_t>(z.count);
  }
  std::vector<Delta> order;
  order.reserve(by_name.size());
  for (auto& [name, d] : by_name) order.push_back(std::move(d));
  std::sort(order.begin(), order.end(), [](const Delta& a, const Delta& b) {
    if (std::fabs(a.d_self) != std::fabs(b.d_self)) {
      return std::fabs(a.d_self) > std::fabs(b.d_self);
    }
    return a.name < b.name;
  });
  if (order.size() > top_n) order.resize(top_n);
  out << " dself(ms)  dtotal(ms)     dcount  zone\n";
  for (const Delta& d : order) {
    char line[256];
    std::snprintf(line, sizeof line, "%+10.3f  %+10.3f %+10lld  %s\n",
                  d.d_self / 1e6, d.d_total / 1e6,
                  static_cast<long long>(d.d_count), d.name.c_str());
    out << line;
  }
}

bool dump_profile(const std::string& path, std::ostream& diag) {
  const ProfileReport report = Profiler::collect();
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    diag << "profile: cannot open " << path << " for writing\n";
    return false;
  }
  write_chrome_trace(out, report);
  out.flush();
  if (!out) {
    diag << "profile: write to " << path << " failed\n";
    return false;
  }
  diag << "profile: " << report.zones.size() << " zones, "
       << report.samples.size() << " samples ("
       << report.dropped_samples << " dropped) -> " << path << "\n";
  return true;
}

bool ProfileScope::finish() {
  if (path_.empty()) return true;
  const std::string path = std::move(path_);
  path_.clear();
  Profiler::disable();
  std::ostringstream diag;
  const bool ok = dump_profile(path, diag);
  std::fputs(diag.str().c_str(), stderr);
  return ok;
}

}  // namespace gridvc::obs
