// Sim-time span helpers.
//
// A SimSpan brackets a wall-free interval (queue wait, VC setup delay,
// transfer time) between two sim-time instants and lands the duration in
// a histogram, so per-request latency attribution costs two timestamps
// and one bucket increment. Spans are plain values — copying a struct
// that holds one is fine, and an unstarted or already-ended span ends as
// a no-op, which makes teardown paths simple.
#pragma once

#include "common/units.hpp"
#include "obs/metrics.hpp"

namespace gridvc::obs {

class SimSpan {
 public:
  SimSpan() = default;

  /// Start (or restart) the span at sim time `now`.
  static SimSpan begin(Seconds now) {
    SimSpan s;
    s.start_ = now;
    s.running_ = true;
    return s;
  }

  bool running() const { return running_; }
  Seconds start_time() const { return start_; }

  /// End the span and return its duration; 0 if it never started or
  /// already ended.
  Seconds end(Seconds now) {
    if (!running_) return 0.0;
    running_ = false;
    return now - start_;
  }

  /// End the span and record the duration into `histogram`; returns the
  /// duration (0 and no observation if the span was not running).
  Seconds end_observe(MetricsRegistry& registry, MetricId histogram, Seconds now) {
    if (!running_) return 0.0;
    const Seconds d = end(now);
    registry.observe(histogram, d);
    return d;
  }

 private:
  Seconds start_ = 0.0;
  bool running_ = false;
};

}  // namespace gridvc::obs
