#include "obs/metrics.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace gridvc::obs {

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
    case MetricKind::kLogHistogram: return "summary";
  }
  return "unknown";
}

const MetricsSnapshot::Entry* MetricsSnapshot::find(const std::string& name) const {
  for (const auto& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

double MetricsSnapshot::value(const std::string& name) const {
  const Entry* e = find(name);
  return e ? e->value : 0.0;
}

MetricId MetricsRegistry::register_metric(const std::string& name, MetricKind kind,
                                          const std::string& help,
                                          std::vector<double> bounds) {
  GRIDVC_REQUIRE(!name.empty(), "metric name must not be empty");
  const auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    const Meta& meta = metas_[it->second];
    GRIDVC_REQUIRE(meta.kind == kind,
                   "metric '" + name + "' already registered as " +
                       metric_kind_name(meta.kind));
    if (kind == MetricKind::kHistogram) {
      GRIDVC_REQUIRE(histograms_[meta.slot].bounds == bounds,
                     "histogram '" + name +
                         "' re-registered with conflicting bucket bounds");
    }
    return MetricId{meta.slot, meta.kind};
  }
  std::uint32_t slot = 0;
  switch (kind) {
    case MetricKind::kCounter:
      slot = static_cast<std::uint32_t>(counters_.size());
      counters_.push_back(0);
      break;
    case MetricKind::kGauge:
      slot = static_cast<std::uint32_t>(gauges_.size());
      gauges_.push_back(0.0);
      break;
    case MetricKind::kHistogram: {
      GRIDVC_REQUIRE(std::is_sorted(bounds.begin(), bounds.end()),
                     "histogram bounds must be ascending");
      slot = static_cast<std::uint32_t>(histograms_.size());
      HistogramSlots h;
      h.counts.assign(bounds.size() + 1, 0);
      h.bounds = std::move(bounds);
      histograms_.push_back(std::move(h));
      break;
    }
    case MetricKind::kLogHistogram:
      slot = static_cast<std::uint32_t>(log_histograms_.size());
      log_histograms_.emplace_back();
      break;
  }
  by_name_.emplace(name, metas_.size());
  metas_.push_back(Meta{name, help, kind, slot});
  return MetricId{slot, kind};
}

MetricId MetricsRegistry::counter(const std::string& name, const std::string& help) {
  return register_metric(name, MetricKind::kCounter, help, {});
}

MetricId MetricsRegistry::gauge(const std::string& name, const std::string& help) {
  return register_metric(name, MetricKind::kGauge, help, {});
}

MetricId MetricsRegistry::histogram(const std::string& name,
                                    std::vector<double> bucket_bounds,
                                    const std::string& help) {
  return register_metric(name, MetricKind::kHistogram, help, std::move(bucket_bounds));
}

MetricId MetricsRegistry::log_histogram(const std::string& name,
                                        const std::string& help) {
  return register_metric(name, MetricKind::kLogHistogram, help, {});
}

MetricId MetricsRegistry::find(const std::string& name, MetricKind kind) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end() || metas_[it->second].kind != kind) return MetricId{};
  return MetricId{metas_[it->second].slot, kind};
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.entries.reserve(metas_.size());
  for (const auto& meta : metas_) {
    MetricsSnapshot::Entry e;
    e.name = meta.name;
    e.help = meta.help;
    e.kind = meta.kind;
    switch (meta.kind) {
      case MetricKind::kCounter:
        e.value = static_cast<double>(counters_[meta.slot]);
        break;
      case MetricKind::kGauge:
        e.value = gauges_[meta.slot];
        break;
      case MetricKind::kHistogram: {
        const HistogramSlots& h = histograms_[meta.slot];
        e.histogram.bounds = h.bounds;
        e.histogram.counts = h.counts;
        e.histogram.sum = h.sum;
        e.histogram.total = h.total;
        e.value = static_cast<double>(h.total);
        break;
      }
      case MetricKind::kLogHistogram: {
        const LogHistogram& h = log_histograms_[meta.slot];
        e.histogram.log_bucket = true;
        e.histogram.sum = h.sum();
        e.histogram.total = h.total();
        e.histogram.p50 = h.quantile(0.50);
        e.histogram.p95 = h.quantile(0.95);
        e.histogram.p99 = h.quantile(0.99);
        // Synthesized bounds over the non-empty buckets; first edge 0
        // carries the underflow (v <= 0) count.
        e.histogram.bounds.push_back(0.0);
        e.histogram.counts.push_back(h.underflow());
        for (const LogHistogram::Bucket& b : h.buckets()) {
          e.histogram.bounds.push_back(b.upper);
          e.histogram.counts.push_back(b.count);
        }
        e.histogram.counts.push_back(0);  // +Inf bucket: nothing above
        e.value = static_cast<double>(h.total());
        break;
      }
    }
    snap.entries.push_back(std::move(e));
  }
  return snap;
}

namespace {

// %g-style shortest round-trip formatting keeps the files compact.
std::string fmt(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

constexpr double kQuantiles[] = {0.5, 0.95, 0.99};

double quantile_field(const MetricsSnapshot::Histogram& h, double q) {
  if (q == 0.5) return h.p50;
  if (q == 0.95) return h.p95;
  return h.p99;
}

}  // namespace

void write_prometheus(std::ostream& out, const MetricsSnapshot& snapshot) {
  for (const auto& e : snapshot.entries) {
    if (!e.help.empty()) out << "# HELP " << e.name << ' ' << e.help << '\n';
    out << "# TYPE " << e.name << ' ' << metric_kind_name(e.kind) << '\n';
    if (e.kind == MetricKind::kLogHistogram) {
      for (const double q : kQuantiles) {
        out << e.name << "{quantile=\"" << fmt(q) << "\"} "
            << fmt(quantile_field(e.histogram, q)) << '\n';
      }
      out << e.name << "_sum " << fmt(e.histogram.sum) << '\n';
      out << e.name << "_count " << e.histogram.total << '\n';
      continue;
    }
    if (e.kind != MetricKind::kHistogram) {
      out << e.name << ' ' << fmt(e.value) << '\n';
      continue;
    }
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < e.histogram.counts.size(); ++i) {
      cumulative += e.histogram.counts[i];
      const std::string le =
          i < e.histogram.bounds.size() ? fmt(e.histogram.bounds[i]) : "+Inf";
      out << e.name << "_bucket{le=\"" << le << "\"} " << cumulative << '\n';
    }
    out << e.name << "_sum " << fmt(e.histogram.sum) << '\n';
    out << e.name << "_count " << e.histogram.total << '\n';
  }
}

void write_csv(std::ostream& out, const MetricsSnapshot& snapshot) {
  out << "metric,kind,label,value\n";
  for (const auto& e : snapshot.entries) {
    if (e.kind == MetricKind::kLogHistogram) {
      for (const double q : kQuantiles) {
        out << e.name << ",summary,quantile=" << fmt(q) << ','
            << fmt(quantile_field(e.histogram, q)) << '\n';
      }
      out << e.name << ",summary,sum," << fmt(e.histogram.sum) << '\n';
      out << e.name << ",summary,count," << e.histogram.total << '\n';
      continue;
    }
    if (e.kind != MetricKind::kHistogram) {
      out << e.name << ',' << metric_kind_name(e.kind) << ",," << fmt(e.value) << '\n';
      continue;
    }
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < e.histogram.counts.size(); ++i) {
      cumulative += e.histogram.counts[i];
      const std::string le =
          i < e.histogram.bounds.size() ? fmt(e.histogram.bounds[i]) : "+Inf";
      out << e.name << ",histogram,le=" << le << ',' << cumulative << '\n';
    }
    out << e.name << ",histogram,sum," << fmt(e.histogram.sum) << '\n';
    out << e.name << ",histogram,count," << e.histogram.total << '\n';
  }
}

}  // namespace gridvc::obs
