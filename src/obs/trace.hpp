// Structured sim-time tracing.
//
// Subsystems emit typed TraceEvents (transfer lifecycle, VC lifecycle,
// network recomputes, task/session open/close) through the Observability
// context; a TraceSink decides where they go. Two sinks are provided: a
// JSONL writer (one flat JSON object per line, timestamps in sim
// seconds) for post-run analysis and replay through gridvc-analyze, and
// a fixed-capacity ring buffer for always-on flight recording with
// bounded memory.
//
// When no sink is attached, emission is a single branch on a null
// pointer; defining GRIDVC_OBS_NO_TRACE compiles emission out entirely
// (the no-op baseline bench_perf_micro measures against).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace gridvc::obs {

/// The event taxonomy (see DESIGN.md for the field conventions of each).
enum class TraceEventType : std::uint8_t {
  // gridftp transfer lifecycle
  kTransferSubmitted,
  kTransferStarted,
  kTransferStripeCompleted,
  kTransferRetry,
  kTransferFinished,
  // managed-task / session lifecycle
  kTaskSubmitted,
  kTaskStarted,
  kTaskFinished,
  kSessionOpened,
  kSessionClosed,
  // virtual-circuit lifecycle
  kVcRequested,
  kVcGranted,
  kVcRejected,
  kVcActivated,
  kVcReleased,
  kVcCancelled,
  kVcFailed,
  // network layer
  kNetRecompute,
  kLinkDown,
  kLinkUp,
  // failure semantics (gridftp)
  kTransferAborted,
  // process-level faults and recovery
  kServerDown,
  kServerUp,
  kIdcOutageBegin,
  kIdcOutageEnd,
  kTaskShed,
  kJournalReplay,
  // inter-domain chain booking (two-phase): one kVcSegmentBooked per
  // accepted per-domain segment; kVcSegmentRollback per segment cancelled
  // when a downstream domain rejects the chain. id = end-to-end chain id
  // (or the segment circuit id when no chain id exists), aux = segment
  // index along the path.
  kVcSegmentBooked,
  kVcSegmentRollback,
  // Admission front-end (src/frontend/). Client sessions: id = session
  // id, aux = tenant index (opened) / close reason 0=disconnect
  // 1=idle-reap (closed). Submissions: id = ticket id, aux = session id;
  // front_submit is emitted only for *accepted* submissions (value =
  // bytes, value2 = tenant index), front_reject for refused ones (aux =
  // session, value = retry-after hint, value2 = reason). Every accepted
  // ticket is resolved exactly once by front_dispatch (aux = backend
  // task id, value = queue wait), front_shed (aux = reason), or
  // front_cancel — gridvc-trace-check enforces the lifecycle.
  kFrontSessionOpened,
  kFrontSessionClosed,
  kFrontSubmit,
  kFrontReject,
  kFrontDispatch,
  kFrontShed,
  kFrontCancel,
};

/// Number of distinct event types (array-sizing for per-type counters).
inline constexpr std::size_t kTraceEventTypeCount =
    static_cast<std::size_t>(TraceEventType::kFrontCancel) + 1;

/// Stable wire name ("transfer_submitted", ...).
const char* trace_event_name(TraceEventType type);

/// Inverse of trace_event_name; returns false for unknown names.
bool parse_trace_event_name(const std::string& name, TraceEventType& out);

/// One emitted event. The generic fields keep the struct POD-sized for
/// the ring buffer; per-type meaning is documented in DESIGN.md
/// ("Observability: event taxonomy").
struct TraceEvent {
  Seconds time = 0.0;      ///< sim time of emission (key "t")
  TraceEventType type = TraceEventType::kNetRecompute;  ///< key "ev"
  std::uint64_t id = 0;    ///< subject id: transfer/task/circuit/session ("id")
  std::uint64_t aux = 0;   ///< secondary integer: count, reason, attempt ("aux")
  double value = 0.0;      ///< primary measurement, usually seconds or bytes ("v")
  double value2 = 0.0;     ///< secondary measurement ("v2")
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(const TraceEvent& event) = 0;
};

/// Writes one flat JSON object per event:
///   {"t":12.5,"ev":"transfer_submitted","id":3,"aux":1,"v":3.2e10,"v2":8}
/// Keys t/ev/id are always present; aux/v/v2 are omitted when zero.
class JsonlTraceSink : public TraceSink {
 public:
  /// The stream must outlive the sink.
  explicit JsonlTraceSink(std::ostream& out) : out_(out) {}
  void emit(const TraceEvent& event) override;

 private:
  std::ostream& out_;
};

/// Keeps the last `capacity` events in emission order.
class RingBufferTraceSink : public TraceSink {
 public:
  explicit RingBufferTraceSink(std::size_t capacity);
  void emit(const TraceEvent& event) override;

  /// Events seen over the sink's lifetime (>= events().size()).
  std::uint64_t total_emitted() const { return total_; }

  /// Retained events, oldest first.
  std::vector<TraceEvent> events() const;

 private:
  std::vector<TraceEvent> buffer_;
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
};

/// Parse one JSONL trace line back into an event. Throws ParseError on
/// malformed lines, missing required keys (t/ev/id), or unknown event
/// names. Blank lines return false.
bool parse_trace_line(const std::string& line, TraceEvent& out);

/// Read a whole JSONL trace stream; throws ParseError with the offending
/// line number on the first malformed line.
std::vector<TraceEvent> read_trace_jsonl(std::istream& in);

}  // namespace gridvc::obs
