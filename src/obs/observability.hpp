// The per-simulation observability context: one MetricsRegistry plus an
// optional TraceSink, owned by sim::Simulator so every layer that holds
// the simulator (network, engine, service, IDC) reaches it without extra
// plumbing.
#pragma once

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace gridvc::obs {

class Observability {
 public:
  Observability() = default;
  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  MetricsRegistry& registry() { return registry_; }
  const MetricsRegistry& registry() const { return registry_; }

  /// Attach (or detach, with nullptr) the trace sink. Non-owning; the
  /// sink must outlive the simulation it records.
  void set_trace_sink(TraceSink* sink) { sink_ = sink; }
  TraceSink* trace_sink() const { return sink_; }

#ifdef GRIDVC_OBS_NO_TRACE
  bool tracing() const { return false; }
  void emit(const TraceEvent&) {}
#else
  bool tracing() const { return sink_ != nullptr; }
  /// One null-check when no sink is attached plus one relaxed load for
  /// the flight recorder — cheap enough to call unconditionally from
  /// instrumented hot paths.
  void emit(const TraceEvent& event) {
    if (sink_) sink_->emit(event);
    if (FlightRecorder::armed()) FlightRecorder::instance().record(event);
  }
#endif

 private:
  MetricsRegistry registry_;
  TraceSink* sink_ = nullptr;
};

}  // namespace gridvc::obs
