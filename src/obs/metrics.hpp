// Metrics registry: named counters, gauges, fixed-bucket histograms,
// and log-bucket (HDR-style) histograms with quantile export.
//
// Built for the simulation hot path: a metric is registered once (a map
// lookup, returning a stable MetricId handle) and updated through plain
// array indexing — an increment is one add into a contiguous uint64_t /
// double slot, no hashing, no locks, no virtual dispatch. Registering
// the same name twice returns the same handle, so independent components
// can share a metric without coordination.
//
// Thread ownership: a registry is single-writer. Each registry belongs
// to the thread that constructed it (each Simulator owns one, and a
// simulator runs on exactly one thread; parallel chaos/scenario
// replications construct a fresh simulator per lane body). add/set/
// observe assert that contract in debug builds. Cross-thread readers
// must synchronize externally — in practice snapshot() is taken on the
// owning thread and the detached MetricsSnapshot is what crosses
// threads.
//
// Naming convention: gridvc_<layer>_<name>, layer one of sim / net /
// gridftp / vc (see DESIGN.md "Observability").
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/log_histogram.hpp"

namespace gridvc::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram, kLogHistogram };

const char* metric_kind_name(MetricKind kind);

/// Stable handle to one registered metric. Cheap to copy; valid for the
/// lifetime of the registry that issued it.
struct MetricId {
  static constexpr std::uint32_t kNone = 0xffffffffu;
  std::uint32_t slot = kNone;  ///< index into the kind-specific slot array
  MetricKind kind = MetricKind::kCounter;
  bool valid() const { return slot != kNone; }
};

/// Point-in-time copy of every registered metric, detached from the
/// registry (scenario results carry one across the owning simulator's
/// destruction).
struct MetricsSnapshot {
  struct Histogram {
    std::vector<double> bounds;          ///< bucket upper edges, ascending
    std::vector<std::uint64_t> counts;   ///< bounds.size() + 1 (+Inf bucket)
    double sum = 0.0;
    std::uint64_t total = 0;
    // Filled for kLogHistogram entries (bounds then hold the upper edges
    // of the non-empty log buckets, first edge 0 for the underflow bin).
    bool log_bucket = false;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  struct Entry {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    double value = 0.0;  ///< counter or gauge value
    Histogram histogram; ///< filled for histogram-like entries
  };

  std::vector<Entry> entries;

  const Entry* find(const std::string& name) const;
  /// Counter/gauge value by name; 0 when absent.
  double value(const std::string& name) const;
};

/// Prometheus text exposition (# HELP / # TYPE / samples). Log-bucket
/// histograms export as summaries: quantile samples plus _sum/_count.
void write_prometheus(std::ostream& out, const MetricsSnapshot& snapshot);
/// Flat CSV: metric,kind,label,value — histograms expand to one row per
/// bucket plus _sum and _count; log histograms to quantile rows.
void write_csv(std::ostream& out, const MetricsSnapshot& snapshot);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Register (or look up) a metric. Re-registration under the same name
  /// must agree on the kind AND, for fixed-bucket histograms, on the
  /// bounds; any clash throws PreconditionError (a silent first-wins
  /// rule let two components observe into differently-shaped buckets
  /// without noticing).
  MetricId counter(const std::string& name, const std::string& help = "");
  MetricId gauge(const std::string& name, const std::string& help = "");
  MetricId histogram(const std::string& name, std::vector<double> bucket_bounds,
                     const std::string& help = "");
  /// Log-bucket histogram: no bounds to declare, p50/p95/p99 exported.
  MetricId log_histogram(const std::string& name, const std::string& help = "");

  // --- hot path -----------------------------------------------------------
  void add(MetricId id, std::uint64_t delta = 1) {
    assert_owner();
    counters_[id.slot] += delta;
  }
  void set(MetricId id, double value) {
    assert_owner();
    gauges_[id.slot] = value;
  }
  void observe(MetricId id, double value) {
    assert_owner();
    if (id.kind == MetricKind::kLogHistogram) {
      log_histograms_[id.slot].observe(value);
    } else {
      histograms_[id.slot].observe(value);
    }
  }

  // --- reads --------------------------------------------------------------
  std::uint64_t counter_value(MetricId id) const { return counters_[id.slot]; }
  double gauge_value(MetricId id) const { return gauges_[id.slot]; }

  /// Handle of an already-registered metric; invalid id when absent or of
  /// a different kind.
  MetricId find(const std::string& name, MetricKind kind) const;

  std::size_t size() const { return metas_.size(); }

  MetricsSnapshot snapshot() const;

  /// Re-pin the single-writer contract to the calling thread. Only legal
  /// across a synchronization point: the sharded simulation joins its
  /// pool at every barrier before re-dispatching worlds onto (possibly
  /// different) lanes, so the old owner's writes happen-before the new
  /// owner's. Mutations within an epoch remain asserted single-threaded.
  void rebind_owner() {
#ifndef NDEBUG
    owner_ = std::this_thread::get_id();
#endif
  }

 private:
  struct HistogramSlots {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  // bounds.size() + 1
    double sum = 0.0;
    std::uint64_t total = 0;

    void observe(double v) {
      // First bucket whose upper edge is >= v (Prometheus `le`
      // semantics); binary search instead of the old linear scan.
      const std::size_t i = static_cast<std::size_t>(
          std::lower_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
      ++counts[i];
      sum += v;
      ++total;
    }
  };
  struct Meta {
    std::string name;
    std::string help;
    MetricKind kind;
    std::uint32_t slot;
  };

  MetricId register_metric(const std::string& name, MetricKind kind,
                           const std::string& help, std::vector<double> bounds);

#ifndef NDEBUG
  void assert_owner() const {
    // Single-writer contract (see header comment): mutations must come
    // from the thread that constructed the registry.
    assert(std::this_thread::get_id() == owner_ &&
           "MetricsRegistry mutated off its owning thread");
  }
  std::thread::id owner_ = std::this_thread::get_id();
#else
  void assert_owner() const {}
#endif

  std::vector<Meta> metas_;                  // registration order
  std::map<std::string, std::size_t> by_name_;  // name -> index into metas_
  std::vector<std::uint64_t> counters_;
  std::vector<double> gauges_;
  std::vector<HistogramSlots> histograms_;
  std::vector<LogHistogram> log_histograms_;
};

}  // namespace gridvc::obs
