// gridvc-synth: generate a GridFTP usage-statistics log as CSV.
//
//   gridvc-synth --profile slac|ncar [--scale F] [--seed N] [--threads N]
//                [--out FILE]
//
// The CSV uses the schema of gridftp/transfer_log.hpp and is consumed by
// gridvc-analyze (or any spreadsheet).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "exec/thread_pool.hpp"
#include "gridftp/transfer_log.hpp"
#include "workload/profiles.hpp"
#include "workload/synth.hpp"

using namespace gridvc;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --profile slac|ncar [--scale F] [--seed N] [--threads N]\n"
               "          [--out FILE]\n"
               "  --profile  which calibrated dataset profile to synthesize\n"
               "  --scale    fraction of the full dataset, (0,1]; default 1.0\n"
               "             (applies to the SLAC profile's 1.02M transfers)\n"
               "  --seed     RNG seed; default 1\n"
               "  --threads  execution-pool width; 0 = hardware (the output\n"
               "             is byte-identical at any value)\n"
               "  --out      output path; default stdout\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string profile_name;
  std::string out_path;
  double scale = 1.0;
  std::uint64_t seed = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--profile") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      profile_name = v;
    } else if (arg == "--scale") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      scale = std::atof(v);
    } else if (arg == "--seed") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      seed = static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--threads") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      exec::set_default_threads(
          static_cast<unsigned>(std::strtoul(v, nullptr, 10)));
    } else if (arg == "--out") {
      const char* v = value();
      if (!v) return usage(argv[0]);
      out_path = v;
    } else {
      return usage(argv[0]);
    }
  }

  workload::SessionTraceProfile profile;
  if (profile_name == "slac") {
    profile = workload::slac_bnl_profile(scale);
  } else if (profile_name == "ncar") {
    profile = workload::ncar_nics_profile();
    if (scale > 0.0 && scale < 1.0) {
      profile.target_transfers =
          static_cast<std::size_t>(static_cast<double>(profile.target_transfers) * scale);
    }
  } else {
    return usage(argv[0]);
  }

  std::fprintf(stderr, "synthesizing %zu transfers (profile %s, seed %llu)...\n",
               profile.target_transfers, profile.name.c_str(),
               static_cast<unsigned long long>(seed));
  const auto log = workload::synthesize_trace(profile, seed);

  if (out_path.empty()) {
    gridftp::write_log(std::cout, log);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
      return 1;
    }
    gridftp::write_log(out, log);
    std::fprintf(stderr, "wrote %zu records to %s\n", log.size(), out_path.c_str());
  }
  return 0;
}
