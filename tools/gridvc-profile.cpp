// gridvc-profile: inspect Chrome trace-event profiles written by
// --profile-out (gridvc-simulate, gridvc-chaos, bench_perf_micro).
//
//   gridvc-profile FILE.json [--top N]       hotspot table
//   gridvc-profile --digest FILE.json        "name count" per zone; the
//                                            digest is byte-identical
//                                            across --threads for the
//                                            same workload
//   gridvc-profile --diff A.json B.json      per-zone deltas (B - A)
//   gridvc-profile --check-flight FILE.json  validate a flight-recorder
//                                            dump
//
// Exit is nonzero on unreadable or malformed input, so CI can use any
// mode as a structural validity check.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/profile_io.hpp"

using namespace gridvc;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s FILE.json [--top N]\n"
               "       %s --digest FILE.json\n"
               "       %s --diff BEFORE.json AFTER.json [--top N]\n"
               "       %s --check-flight FILE.json\n"
               "  default        top-N hotspots (self-time descending)\n"
               "  --digest       one 'name count' line per zone; identical\n"
               "                 across --threads for the same workload\n"
               "  --diff         per-zone self/total/count deltas\n"
               "  --check-flight validate a flight-recorder dump file\n",
               argv0, argv0, argv0, argv0);
  return 2;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GRIDVC_REQUIRE(in.good(), "cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// A flight dump is not a profile; validate its shape directly.
int check_flight(const std::string& path) {
  const obs::Json doc = obs::parse_json(slurp(path));
  const obs::Json* rec = doc.get("flightRecorder");
  GRIDVC_REQUIRE(rec != nullptr, path + ": missing flightRecorder object");
  const obs::Json* reason = rec->get("reason");
  GRIDVC_REQUIRE(reason != nullptr && reason->type == obs::Json::Type::kString &&
                     !reason->str.empty(),
                 path + ": flightRecorder.reason missing or empty");
  const obs::Json* events = rec->get("traceEvents");
  GRIDVC_REQUIRE(events != nullptr && events->type == obs::Json::Type::kArray,
                 path + ": flightRecorder.traceEvents missing");
  const obs::Json* thread = rec->get("thread");
  GRIDVC_REQUIRE(thread != nullptr && thread->type == obs::Json::Type::kObject,
                 path + ": flightRecorder.thread missing");
  std::size_t zones = 0;
  if (const obs::Json* totals = rec->get("zoneTotals");
      totals != nullptr && totals->type == obs::Json::Type::kArray) {
    zones = totals->array.size();
  }
  std::printf("%s: ok (reason=%s, %zu trace event(s), %zu zone total(s))\n",
              path.c_str(), reason->str.c_str(), events->array.size(), zones);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "hotspots";
  std::vector<std::string> files;
  std::size_t top_n = 20;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--digest" || arg == "--check-flight") {
      mode = arg.substr(2);
    } else if (arg == "--diff") {
      mode = "diff";
    } else if (arg == "--top" && i + 1 < argc) {
      top_n = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }
  const std::size_t want = mode == "diff" ? 2 : 1;
  if (files.size() != want) return usage(argv[0]);

  try {
    if (mode == "check-flight") return check_flight(files[0]);
    if (mode == "digest") {
      obs::write_profile_digest(std::cout, obs::read_profile_file(files[0]));
    } else if (mode == "diff") {
      obs::write_profile_diff(std::cout, obs::read_profile_file(files[0]),
                              obs::read_profile_file(files[1]), top_n);
    } else {
      obs::write_hotspots(std::cout, obs::read_profile_file(files[0]), top_n);
    }
  } catch (const std::exception& err) {
    std::fprintf(stderr, "gridvc-profile: %s\n", err.what());
    return 1;
  }
  return 0;
}
