// gridvc-perf-gate: compare a fresh BENCH_perf_scale.json against the
// checked-in baseline and fail on regressions.
//
//   gridvc-perf-gate --baseline bench/baselines/BENCH_perf_scale.json
//                    --current BENCH_perf_scale.json [--tolerance 0.20]
//
// Both files are BENCH_*.json exhibits ({"exhibit": ..., "counters":
// {...}}). The gate reads every counter whose key starts with "ratio_"
// from the baseline — those are the scale-curve shape metrics
// (us/op at the top size divided by us/op at 10k), which are stable
// across machines in a way raw microsecond counters are not — and
// requires the current value to be at most baseline * (1 + tolerance).
// A missing key in the current file is a failure too: a renamed or
// dropped curve must update the baseline deliberately. Exit status is
// 0 when every gated key passes, 1 otherwise, with a per-key listing
// either way.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

namespace {

// Minimal scan for "key": number pairs. The BENCH exhibit format is a
// two-level object with unique keys and no string values containing
// quotes, so a flat scan is exact for our files; it is not a general
// JSON parser and does not need to be.
std::map<std::string, double> read_counters(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "gridvc-perf-gate: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  std::map<std::string, double> out;
  std::size_t i = 0;
  while ((i = text.find('"', i)) != std::string::npos) {
    const std::size_t k0 = i + 1;
    const std::size_t k1 = text.find('"', k0);
    if (k1 == std::string::npos) break;
    std::size_t j = k1 + 1;
    while (j < text.size() && (text[j] == ' ' || text[j] == '\t')) ++j;
    if (j < text.size() && text[j] == ':') {
      ++j;
      while (j < text.size() && (text[j] == ' ' || text[j] == '\t')) ++j;
      char* end = nullptr;
      const double v = std::strtod(text.c_str() + j, &end);
      if (end != text.c_str() + j) out[text.substr(k0, k1 - k0)] = v;
    }
    i = k1 + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path, current_path;
  double tolerance = 0.20;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--current") == 0 && i + 1 < argc) {
      current_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tolerance") == 0 && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: gridvc-perf-gate --baseline FILE --current FILE "
                   "[--tolerance FRACTION]\n");
      return 2;
    }
  }
  if (baseline_path.empty() || current_path.empty()) {
    std::fprintf(stderr, "gridvc-perf-gate: --baseline and --current are required\n");
    return 2;
  }

  const auto baseline = read_counters(baseline_path);
  const auto current = read_counters(current_path);

  int gated = 0, regressed = 0, missing = 0;
  std::printf("perf gate: tolerance %.0f%%, baseline %s\n", tolerance * 100.0,
              baseline_path.c_str());
  for (const auto& [key, base] : baseline) {
    if (key.rfind("ratio_", 0) != 0) continue;
    ++gated;
    const auto it = current.find(key);
    if (it == current.end()) {
      std::printf("  FAIL %-44s baseline %8.3f  current missing\n", key.c_str(), base);
      ++missing;
      continue;
    }
    const double limit = base * (1.0 + tolerance);
    const bool ok = it->second <= limit;
    std::printf("  %s %-44s baseline %8.3f  current %8.3f  limit %8.3f\n",
                ok ? "ok  " : "FAIL", key.c_str(), base, it->second, limit);
    if (!ok) ++regressed;
  }
  // Keys only on the candidate side are the other half of a rename: the
  // baseline-side half already failed above, but naming the new key makes
  // the fix (update the baseline deliberately) obvious from the log.
  for (const auto& [key, value] : current) {
    if (key.rfind("ratio_", 0) != 0) continue;
    if (baseline.find(key) == baseline.end()) {
      std::printf("  note %-44s current %8.3f  not in baseline (ungated)\n",
                  key.c_str(), value);
    }
  }
  if (gated == 0) {
    std::fprintf(stderr, "gridvc-perf-gate: baseline has no ratio_* keys to gate\n");
    return 2;
  }
  if (regressed + missing > 0) {
    std::printf("perf gate: %d/%d gated keys failed (%d regressed beyond tolerance, "
                "%d missing from current)\n",
                regressed + missing, gated, regressed, missing);
    return 1;
  }
  std::printf("perf gate: all %d gated keys within tolerance\n", gated);
  return 0;
}
