// gridvc-trace-check: schema validator for JSONL trace files.
//
//   gridvc-trace-check FILE.jsonl
//
// Verifies that every line is a flat JSON object the trace parser
// accepts (required keys t/ev/id, known event names, no trailing junk)
// and that timestamps are monotone non-decreasing — the invariant the
// timeline reconstruction in gridvc-analyze depends on.
//
// On top of the schema, it checks the failure-semantics lifecycle rules:
//   - a transfer_aborted with v2=0 (non-terminal) must be followed by a
//     transfer_retry, transfer_finished, or terminal abort for the same
//     transfer — an abort nobody resolves is a lost transfer;
//   - server_down/server_up must alternate per server id, and every
//     crashed server must be back up by end of trace;
//   - idc_outage_begin/idc_outage_end must alternate, and the control
//     plane must be up by end of trace;
// and the admission front-end session/ticket lifecycle:
//   - front_session_opened/closed must pair per session id, and
//     front_submit/front_reject must reference a session that is open at
//     that point (no submissions after a disconnect or idle reap);
//   - every front_submit (accepted ticket) must be resolved exactly once
//     by a front_dispatch, front_shed, or front_cancel — double
//     resolutions and tickets left hanging at end of trace both fail.
//
// Exits 0 with a per-event-type census on success, 1 on the first
// violation (with the offending line number), 2 on usage errors.
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>

#include "obs/trace.hpp"

using namespace gridvc;

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s FILE.jsonl\n", argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }

  std::map<std::string, std::size_t> census;
  std::size_t line_number = 0;
  std::size_t events = 0;
  double last_time = 0.0;
  bool have_time = false;
  // id -> line of the unresolved (non-terminal) abort.
  std::map<std::uint64_t, std::size_t> open_aborts;
  // server id -> currently down (value = line of the down event).
  std::map<std::uint64_t, std::size_t> servers_down;
  std::size_t idc_outage_depth = 0;
  // front-end session id -> line opened; ticket id -> line accepted.
  std::map<std::uint64_t, std::size_t> open_sessions;
  std::map<std::uint64_t, std::size_t> open_tickets;
  std::string line;
  while (std::getline(in, line)) {
    ++line_number;
    obs::TraceEvent event;
    try {
      if (!obs::parse_trace_line(line, event)) continue;  // blank line
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s:%zu: %s\n", path.c_str(), line_number, e.what());
      return 1;
    }
    if (have_time && event.time < last_time) {
      std::fprintf(stderr,
                   "%s:%zu: timestamp went backwards (%.9g after %.9g)\n",
                   path.c_str(), line_number, event.time, last_time);
      return 1;
    }
    last_time = event.time;
    have_time = true;
    ++events;
    ++census[obs::trace_event_name(event.type)];

    switch (event.type) {
      case obs::TraceEventType::kTransferAborted:
        if (event.value2 != 0.0) {
          open_aborts.erase(event.id);  // terminal: permanent failure recorded
        } else {
          open_aborts[event.id] = line_number;
        }
        break;
      case obs::TraceEventType::kTransferRetry:
      case obs::TraceEventType::kTransferFinished:
        open_aborts.erase(event.id);
        break;
      case obs::TraceEventType::kServerDown: {
        const auto [it, inserted] = servers_down.emplace(event.id, line_number);
        if (!inserted) {
          std::fprintf(stderr,
                       "%s:%zu: server %llu went down twice (first at line %zu)\n",
                       path.c_str(), line_number,
                       static_cast<unsigned long long>(event.id), it->second);
          return 1;
        }
        break;
      }
      case obs::TraceEventType::kServerUp:
        if (servers_down.erase(event.id) == 0) {
          std::fprintf(stderr, "%s:%zu: server %llu came up without going down\n",
                       path.c_str(), line_number,
                       static_cast<unsigned long long>(event.id));
          return 1;
        }
        break;
      case obs::TraceEventType::kIdcOutageBegin:
        if (idc_outage_depth != 0) {
          std::fprintf(stderr, "%s:%zu: idc_outage_begin during an open outage\n",
                       path.c_str(), line_number);
          return 1;
        }
        ++idc_outage_depth;
        break;
      case obs::TraceEventType::kIdcOutageEnd:
        if (idc_outage_depth == 0) {
          std::fprintf(stderr, "%s:%zu: idc_outage_end without a begin\n",
                       path.c_str(), line_number);
          return 1;
        }
        --idc_outage_depth;
        break;
      case obs::TraceEventType::kFrontSessionOpened: {
        const auto [it, inserted] = open_sessions.emplace(event.id, line_number);
        if (!inserted) {
          std::fprintf(stderr,
                       "%s:%zu: session %llu opened twice (first at line %zu)\n",
                       path.c_str(), line_number,
                       static_cast<unsigned long long>(event.id), it->second);
          return 1;
        }
        break;
      }
      case obs::TraceEventType::kFrontSessionClosed:
        if (open_sessions.erase(event.id) == 0) {
          std::fprintf(stderr, "%s:%zu: session %llu closed without opening\n",
                       path.c_str(), line_number,
                       static_cast<unsigned long long>(event.id));
          return 1;
        }
        break;
      case obs::TraceEventType::kFrontSubmit: {
        const auto session = static_cast<std::uint64_t>(event.aux);
        if (open_sessions.count(session) == 0) {
          std::fprintf(stderr,
                       "%s:%zu: front_submit on session %llu which is not open\n",
                       path.c_str(), line_number,
                       static_cast<unsigned long long>(session));
          return 1;
        }
        const auto [it, inserted] = open_tickets.emplace(event.id, line_number);
        if (!inserted) {
          std::fprintf(stderr,
                       "%s:%zu: ticket %llu accepted twice (first at line %zu)\n",
                       path.c_str(), line_number,
                       static_cast<unsigned long long>(event.id), it->second);
          return 1;
        }
        break;
      }
      case obs::TraceEventType::kFrontReject:
        if (open_sessions.count(static_cast<std::uint64_t>(event.aux)) == 0) {
          std::fprintf(stderr,
                       "%s:%zu: front_reject on session %llu which is not open\n",
                       path.c_str(), line_number,
                       static_cast<unsigned long long>(event.aux));
          return 1;
        }
        break;
      case obs::TraceEventType::kFrontDispatch:
      case obs::TraceEventType::kFrontShed:
      case obs::TraceEventType::kFrontCancel:
        if (open_tickets.erase(event.id) == 0) {
          std::fprintf(stderr,
                       "%s:%zu: %s resolves ticket %llu which is not pending "
                       "(never accepted, or already resolved)\n",
                       path.c_str(), line_number,
                       obs::trace_event_name(event.type),
                       static_cast<unsigned long long>(event.id));
          return 1;
        }
        break;
      default:
        break;
    }
  }

  if (events == 0) {
    std::fprintf(stderr, "%s: no events\n", path.c_str());
    return 1;
  }
  if (!open_aborts.empty()) {
    const auto& [id, at] = *open_aborts.begin();
    std::fprintf(stderr,
                 "%s: %zu transfer(s) aborted without a matching retry or "
                 "permanent-failure record (first: transfer %llu at line %zu)\n",
                 path.c_str(), open_aborts.size(),
                 static_cast<unsigned long long>(id), at);
    return 1;
  }
  if (!servers_down.empty()) {
    const auto& [id, at] = *servers_down.begin();
    std::fprintf(stderr, "%s: server %llu still down at end of trace (line %zu)\n",
                 path.c_str(), static_cast<unsigned long long>(id), at);
    return 1;
  }
  if (idc_outage_depth != 0) {
    std::fprintf(stderr, "%s: IDC outage still open at end of trace\n", path.c_str());
    return 1;
  }
  if (!open_tickets.empty()) {
    const auto& [id, at] = *open_tickets.begin();
    std::fprintf(stderr,
                 "%s: %zu accepted ticket(s) never dispatched, shed, or "
                 "cancelled (first: ticket %llu at line %zu)\n",
                 path.c_str(), open_tickets.size(),
                 static_cast<unsigned long long>(id), at);
    return 1;
  }
  std::printf("%s: OK, %zu events, %zu types\n", path.c_str(), events, census.size());
  for (const auto& [name, count] : census) {
    std::printf("  %-24s %zu\n", name.c_str(), count);
  }
  return 0;
}
