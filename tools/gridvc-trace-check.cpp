// gridvc-trace-check: schema validator for JSONL trace files.
//
//   gridvc-trace-check FILE.jsonl
//
// Verifies that every line is a flat JSON object the trace parser
// accepts (required keys t/ev/id, known event names, no trailing junk)
// and that timestamps are monotone non-decreasing — the invariant the
// timeline reconstruction in gridvc-analyze depends on. Exits 0 with a
// per-event-type census on success, 1 on the first violation (with the
// offending line number), 2 on usage errors.
#include <cstdio>
#include <fstream>
#include <map>
#include <string>

#include "obs/trace.hpp"

using namespace gridvc;

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s FILE.jsonl\n", argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }

  std::map<std::string, std::size_t> census;
  std::size_t line_number = 0;
  std::size_t events = 0;
  double last_time = 0.0;
  bool have_time = false;
  std::string line;
  while (std::getline(in, line)) {
    ++line_number;
    obs::TraceEvent event;
    try {
      if (!obs::parse_trace_line(line, event)) continue;  // blank line
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s:%zu: %s\n", path.c_str(), line_number, e.what());
      return 1;
    }
    if (have_time && event.time < last_time) {
      std::fprintf(stderr,
                   "%s:%zu: timestamp went backwards (%.9g after %.9g)\n",
                   path.c_str(), line_number, event.time, last_time);
      return 1;
    }
    last_time = event.time;
    have_time = true;
    ++events;
    ++census[obs::trace_event_name(event.type)];
  }

  if (events == 0) {
    std::fprintf(stderr, "%s: no events\n", path.c_str());
    return 1;
  }
  std::printf("%s: OK, %zu events, %zu types\n", path.c_str(), events, census.size());
  for (const auto& [name, count] : census) {
    std::printf("  %-24s %zu\n", name.c_str(), count);
  }
  return 0;
}
