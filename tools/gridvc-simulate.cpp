// gridvc-simulate: run one of the full event-driven scenarios and dump
// its artifacts as CSV.
//
//   gridvc-simulate --scenario nersc-ornl|anl-nersc [--seed N]
//                   [--log FILE] [--snmp FILE]
//
// nersc-ornl: the 145x32GB test-transfer study; --snmp dumps the five
// monitored routers' forward-direction 30-s byte series.
// anl-nersc: the 334-test matrix; --log holds the full NERSC-side log.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/csv.hpp"
#include "common/strings.hpp"
#include "gridftp/transfer_log.hpp"
#include "workload/scenarios.hpp"

using namespace gridvc;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --scenario nersc-ornl|anl-nersc [--seed N] "
               "[--log FILE] [--snmp FILE]\n",
               argv0);
  return 2;
}

bool write_log_file(const gridftp::TransferLog& log, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  gridftp::write_log(out, log);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario, log_path, snmp_path;
  std::uint64_t seed = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scenario" && i + 1 < argc) {
      scenario = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--log" && i + 1 < argc) {
      log_path = argv[++i];
    } else if (arg == "--snmp" && i + 1 < argc) {
      snmp_path = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }

  if (scenario == "nersc-ornl") {
    std::fprintf(stderr, "running the NERSC-ORNL 32GB test scenario (seed %llu)...\n",
                 static_cast<unsigned long long>(seed));
    const auto result = workload::run_nersc_ornl_tests(workload::NerscOrnlConfig{}, seed);
    std::printf("%zu test transfers simulated; %zu monitored routers\n",
                result.log.size(), result.router_names.size());
    if (!log_path.empty()) {
      if (!write_log_file(result.log, log_path)) {
        std::fprintf(stderr, "cannot write %s\n", log_path.c_str());
        return 1;
      }
      std::printf("transfer log -> %s\n", log_path.c_str());
    }
    if (!snmp_path.empty()) {
      std::ofstream out(snmp_path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", snmp_path.c_str());
        return 1;
      }
      CsvRow header{"bin_start_s"};
      for (const auto& name : result.router_names) header.push_back(name + "_bytes");
      out << format_csv_line(header) << '\n';
      const auto& first = result.forward_series.front();
      for (std::size_t bin = 0; bin < first.bins.size(); ++bin) {
        CsvRow row{format_fixed(first.bin_start(bin), 0)};
        for (const auto& series : result.forward_series) {
          row.push_back(format_fixed(bin < series.bins.size() ? series.bins[bin] : 0.0, 0));
        }
        out << format_csv_line(row) << '\n';
      }
      std::printf("SNMP series (%zu bins x %zu routers) -> %s\n", first.bins.size(),
                  result.forward_series.size(), snmp_path.c_str());
    }
    return 0;
  }

  if (scenario == "anl-nersc") {
    std::fprintf(stderr, "running the ANL-NERSC test-matrix scenario (seed %llu)...\n",
                 static_cast<unsigned long long>(seed));
    const auto result = workload::run_anl_nersc_tests(workload::AnlNerscConfig{}, seed);
    std::printf("%zu transfers at the NERSC DTN (tests: mm=%zu md=%zu dm=%zu dd=%zu)\n",
                result.all_log.size(), result.mem_mem.size(), result.mem_disk.size(),
                result.disk_mem.size(), result.disk_disk.size());
    if (!log_path.empty()) {
      if (!write_log_file(result.all_log, log_path)) {
        std::fprintf(stderr, "cannot write %s\n", log_path.c_str());
        return 1;
      }
      std::printf("transfer log -> %s\n", log_path.c_str());
    }
    return 0;
  }

  return usage(argv[0]);
}
