// gridvc-simulate: run one of the full event-driven scenarios and dump
// its artifacts.
//
//   gridvc-simulate --scenario nersc-ornl|anl-nersc|managed-vc|faulty-wan
//                   [--seed N] [--days N] [--tasks N] [--transfers N]
//                   [--link-mtbf S] [--link-mttr S]
//                   [--server-mtbf S] [--server-mttr S]
//                   [--idc-outage S] [--idc-mttr S] [--queue-limit N]
//                   [--log FILE] [--snmp FILE] [--metrics-out FILE]
//                   [--trace-out FILE.jsonl]
//
// nersc-ornl: the 145x32GB test-transfer study; --snmp dumps the five
// monitored routers' forward-direction 30-s byte series.
// anl-nersc: the 334-test matrix; --log holds the full NERSC-side log.
// managed-vc: the VC-aware managed transfer service (exercises all four
// instrumented layers: sim, net, gridftp, vc).
// faulty-wan: circuits and transfers riding a flapping backbone span
// (--link-mtbf/--link-mttr tune the fault process; --link-mtbf 0
// disables it). Exercises the failure semantics end to end: flow aborts,
// restart-marker retries, circuit failure and re-signaling.
// --server-mtbf adds source-DTN crash/restart windows and --idc-outage
// adds control-plane outage windows to faulty-wan (both disabled by
// default, leaving legacy seeds byte-identical); --queue-limit bounds
// the managed-vc service queue (excess submissions are rejected).
//
// --metrics-out writes the end-of-run metrics snapshot in Prometheus
// text exposition format, or as flat CSV when FILE ends in ".csv".
// --trace-out streams every structured trace event as JSONL
// (replayable via `gridvc-analyze --trace FILE`, checkable via
// gridvc-trace-check).
// --profile-out enables the zone profiler for the run and writes a
// Chrome trace-event JSON profile (Perfetto-loadable; inspect/diff via
// gridvc-profile).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "common/csv.hpp"
#include "common/strings.hpp"
#include "exec/thread_pool.hpp"
#include "gridftp/transfer_log.hpp"
#include "obs/metrics.hpp"
#include "obs/profile_io.hpp"
#include "obs/trace.hpp"
#include "shard/sharded_simulation.hpp"
#include "workload/federation.hpp"
#include "workload/scenarios.hpp"

using namespace gridvc;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --scenario nersc-ornl|anl-nersc|managed-vc|faulty-wan|federation\n"
               "          [--seed N] [--days N] [--tasks N] [--transfers N]\n"
               "          [--threads N]\n"
               "          [--link-mtbf S] [--link-mttr S] [--server-mtbf S]\n"
               "          [--server-mttr S] [--idc-outage S] [--idc-mttr S]\n"
               "          [--queue-limit N] [--log FILE] [--snmp FILE]\n"
               "          [--metrics-out FILE] [--trace-out FILE.jsonl]\n"
               "          [--profile-out FILE.json]\n"
               "  --days         scenario horizon in days (nersc-ornl, anl-nersc)\n"
               "  --tasks        task count (managed-vc)\n"
               "  --transfers    transfer count (faulty-wan)\n"
               "  --link-mtbf    mean seconds between link failures (faulty-wan;\n"
               "                 0 disables fault injection)\n"
               "  --link-mttr    mean seconds to repair a failed link (faulty-wan)\n"
               "  --server-mtbf  mean seconds between source-DTN crashes (faulty-wan;\n"
               "                 0, the default, disables server crashes)\n"
               "  --server-mttr  mean seconds until a crashed DTN restarts\n"
               "  --idc-outage   mean seconds between IDC control-plane outages\n"
               "                 (faulty-wan; 0, the default, disables them)\n"
               "  --idc-mttr     mean seconds until the control plane recovers\n"
               "  --queue-limit  bound the managed-vc task queue (0 = unbounded)\n"
               "  --metrics-out  Prometheus text snapshot (CSV when FILE ends .csv)\n"
               "  --trace-out    structured trace events as JSONL\n"
               "  --profile-out  zone profile as Chrome trace-event JSON\n"
               "  --shards       executor lanes for the sharded federation run\n"
               "                 (federation; the digest is shard-count invariant)\n"
               "  --sites        federation site/domain count (federation)\n"
               "  --users        federation user-session count (federation)\n"
               "  --digest-out   write the deterministic run digest to FILE\n",
               argv0);
  return 2;
}

bool write_log_file(const gridftp::TransferLog& log, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  gridftp::write_log(out, log);
  return true;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

int write_metrics_file(const obs::MetricsSnapshot& snapshot, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  if (ends_with(path, ".csv")) {
    obs::write_csv(out, snapshot);
  } else {
    obs::write_prometheus(out, snapshot);
  }
  std::printf("metrics snapshot (%zu metrics) -> %s\n", snapshot.entries.size(),
              path.c_str());
  return 0;
}

/// Holds the --trace-out stream + sink; null members when tracing is off.
struct TraceOut {
  std::ofstream stream;
  std::unique_ptr<obs::JsonlTraceSink> sink;

  static bool open(const std::string& path, TraceOut& out) {
    if (path.empty()) return true;
    out.stream.open(path);
    if (!out.stream) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    out.sink = std::make_unique<obs::JsonlTraceSink>(out.stream);
    return true;
  }
};

}  // namespace

int main(int argc, char** argv) {
  std::string scenario, log_path, snmp_path, metrics_path, trace_path, profile_path;
  std::uint64_t seed = 1;
  std::size_t days = 0;       // 0 = scenario default
  std::size_t tasks = 0;      // 0 = scenario default
  std::size_t transfers = 0;  // 0 = scenario default
  double link_mtbf = -1.0;    // < 0 = scenario default
  double link_mttr = -1.0;    // < 0 = scenario default
  double server_mtbf = -1.0;  // < 0 = scenario default (disabled)
  double server_mttr = -1.0;  // < 0 = scenario default
  double idc_outage = -1.0;   // < 0 = scenario default (disabled)
  double idc_mttr = -1.0;     // < 0 = scenario default
  std::size_t queue_limit = 0;
  unsigned shards = 1;
  std::size_t sites = 0;      // 0 = federation default
  std::uint64_t users = 0;    // 0 = federation default
  std::string digest_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--scenario" && i + 1 < argc) {
      scenario = argv[++i];
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--days" && i + 1 < argc) {
      days = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--tasks" && i + 1 < argc) {
      tasks = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--transfers" && i + 1 < argc) {
      transfers = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--link-mtbf" && i + 1 < argc) {
      link_mtbf = std::strtod(argv[++i], nullptr);
    } else if (arg == "--link-mttr" && i + 1 < argc) {
      link_mttr = std::strtod(argv[++i], nullptr);
    } else if (arg == "--server-mtbf" && i + 1 < argc) {
      server_mtbf = std::strtod(argv[++i], nullptr);
    } else if (arg == "--server-mttr" && i + 1 < argc) {
      server_mttr = std::strtod(argv[++i], nullptr);
    } else if (arg == "--idc-outage" && i + 1 < argc) {
      idc_outage = std::strtod(argv[++i], nullptr);
    } else if (arg == "--idc-mttr" && i + 1 < argc) {
      idc_mttr = std::strtod(argv[++i], nullptr);
    } else if (arg == "--queue-limit" && i + 1 < argc) {
      queue_limit = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--shards" && i + 1 < argc) {
      shards = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--sites" && i + 1 < argc) {
      sites = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--users" && i + 1 < argc) {
      users = static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--digest-out" && i + 1 < argc) {
      digest_path = argv[++i];
    } else if (arg == "--threads" && i + 1 < argc) {
      gridvc::exec::set_default_threads(
          static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10)));
    } else if (arg == "--log" && i + 1 < argc) {
      log_path = argv[++i];
    } else if (arg == "--snmp" && i + 1 < argc) {
      snmp_path = argv[++i];
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--profile-out" && i + 1 < argc) {
      profile_path = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }

  TraceOut trace;
  if (!TraceOut::open(trace_path, trace)) return 1;

  // Written when main returns, whichever scenario branch we take.
  obs::ProfileScope profile;
  if (!profile_path.empty()) profile.arm(profile_path);

  if (scenario == "nersc-ornl") {
    std::fprintf(stderr, "running the NERSC-ORNL 32GB test scenario (seed %llu)...\n",
                 static_cast<unsigned long long>(seed));
    workload::NerscOrnlConfig config;
    if (days > 0) {
      config.days = days;
      // Keep slots non-degenerate on short horizons.
      config.transfer_count =
          std::min<std::size_t>(config.transfer_count,
                                days * config.launch_hours.size() * 3);
    }
    config.trace_sink = trace.sink.get();
    const auto result = workload::run_nersc_ornl_tests(config, seed);
    std::printf("%zu test transfers simulated; %zu monitored routers\n",
                result.log.size(), result.router_names.size());
    if (!log_path.empty()) {
      if (!write_log_file(result.log, log_path)) {
        std::fprintf(stderr, "cannot write %s\n", log_path.c_str());
        return 1;
      }
      std::printf("transfer log -> %s\n", log_path.c_str());
    }
    if (!snmp_path.empty()) {
      std::ofstream out(snmp_path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", snmp_path.c_str());
        return 1;
      }
      CsvRow header{"bin_start_s"};
      for (const auto& name : result.router_names) header.push_back(name + "_bytes");
      out << format_csv_line(header) << '\n';
      const auto& first = result.forward_series.front();
      for (std::size_t bin = 0; bin < first.bins.size(); ++bin) {
        CsvRow row{format_fixed(first.bin_start(bin), 0)};
        for (const auto& series : result.forward_series) {
          row.push_back(format_fixed(bin < series.bins.size() ? series.bins[bin] : 0.0, 0));
        }
        out << format_csv_line(row) << '\n';
      }
      std::printf("SNMP series (%zu bins x %zu routers) -> %s\n", first.bins.size(),
                  result.forward_series.size(), snmp_path.c_str());
    }
    if (!metrics_path.empty()) return write_metrics_file(result.metrics, metrics_path);
    return 0;
  }

  if (scenario == "anl-nersc") {
    std::fprintf(stderr, "running the ANL-NERSC test-matrix scenario (seed %llu)...\n",
                 static_cast<unsigned long long>(seed));
    workload::AnlNerscConfig config;
    if (days > 0) {
      // Scale the test matrix with the horizon so short runs stay short.
      const double scale =
          static_cast<double>(days) / static_cast<double>(config.days);
      config.days = days;
      if (scale < 1.0) {
        config.mem_mem = std::max<std::size_t>(
            1, static_cast<std::size_t>(static_cast<double>(config.mem_mem) * scale));
        config.mem_disk = std::max<std::size_t>(
            1, static_cast<std::size_t>(static_cast<double>(config.mem_disk) * scale));
        config.disk_mem = std::max<std::size_t>(
            1, static_cast<std::size_t>(static_cast<double>(config.disk_mem) * scale));
        config.disk_disk = std::max<std::size_t>(
            1, static_cast<std::size_t>(static_cast<double>(config.disk_disk) * scale));
      }
    }
    config.trace_sink = trace.sink.get();
    const auto result = workload::run_anl_nersc_tests(config, seed);
    std::printf("%zu transfers at the NERSC DTN (tests: mm=%zu md=%zu dm=%zu dd=%zu)\n",
                result.all_log.size(), result.mem_mem.size(), result.mem_disk.size(),
                result.disk_mem.size(), result.disk_disk.size());
    if (!log_path.empty()) {
      if (!write_log_file(result.all_log, log_path)) {
        std::fprintf(stderr, "cannot write %s\n", log_path.c_str());
        return 1;
      }
      std::printf("transfer log -> %s\n", log_path.c_str());
    }
    if (!metrics_path.empty()) return write_metrics_file(result.metrics, metrics_path);
    return 0;
  }

  if (scenario == "managed-vc") {
    std::fprintf(stderr, "running the managed-VC service scenario (seed %llu)...\n",
                 static_cast<unsigned long long>(seed));
    workload::ManagedVcConfig config;
    if (tasks > 0) config.task_count = tasks;
    config.queue_limit = queue_limit;
    config.trace_sink = trace.sink.get();
    const auto result = workload::run_managed_vc(config, seed);
    std::printf("%zu tasks done (%zu transfers); circuits: %zu granted, %zu rejected, "
                "%zu retried; blocking %s\n",
                result.tasks_completed, result.transfers_completed,
                result.circuits_granted, result.circuits_rejected,
                result.circuit_retries,
                format_percent(result.blocking_probability, 1).c_str());
    if (!metrics_path.empty()) return write_metrics_file(result.metrics, metrics_path);
    return 0;
  }

  if (scenario == "faulty-wan") {
    std::fprintf(stderr, "running the faulty-WAN failure scenario (seed %llu)...\n",
                 static_cast<unsigned long long>(seed));
    workload::FaultyWanConfig config;
    if (transfers > 0) config.transfer_count = transfers;
    if (link_mtbf >= 0.0) config.link_mtbf = link_mtbf;
    if (link_mttr >= 0.0) config.link_mttr = link_mttr;
    if (server_mtbf >= 0.0) config.server_mtbf = server_mtbf;
    if (server_mttr >= 0.0) config.server_mttr = server_mttr;
    if (idc_outage >= 0.0) config.idc_outage_mtbf = idc_outage;
    if (idc_mttr >= 0.0) config.idc_outage_mttr = idc_mttr;
    config.trace_sink = trace.sink.get();
    const auto result = workload::run_faulty_wan(config, seed);
    std::printf(
        "%zu transfers completed, %zu permanently failed; "
        "%llu attempts aborted by outages\n",
        result.transfers_completed, result.transfers_failed,
        static_cast<unsigned long long>(result.aborted_attempts));
    std::printf(
        "links: %llu failures / %llu repairs; circuits: %zu granted, "
        "%llu failed, %llu re-signaled\n",
        static_cast<unsigned long long>(result.link_failures),
        static_cast<unsigned long long>(result.link_repairs),
        result.circuits_granted,
        static_cast<unsigned long long>(result.circuits_failed),
        static_cast<unsigned long long>(result.circuits_resignaled));
    if (result.server_crashes > 0 || result.idc_outages > 0) {
      std::printf(
          "process faults: %llu server crashes, %llu IDC outages "
          "(%llu fail-fast rejections)\n",
          static_cast<unsigned long long>(result.server_crashes),
          static_cast<unsigned long long>(result.idc_outages),
          static_cast<unsigned long long>(result.outage_rejections));
    }
    if (!metrics_path.empty()) return write_metrics_file(result.metrics, metrics_path);
    return 0;
  }

  if (scenario == "federation") {
    std::fprintf(stderr,
                 "running the sharded multi-domain federation (seed %llu, %u shards)...\n",
                 static_cast<unsigned long long>(seed), shards);
    workload::FederationConfig config;
    if (sites > 0) config.sites = sites;
    if (users > 0) config.users = users;
    if (transfers > 0) {
      config.transfers_per_user = static_cast<std::uint32_t>(
          std::max<std::size_t>(1, transfers / std::max<std::uint64_t>(1, config.users)));
    }
    const auto scn = workload::build_federation(config, seed);
    shard::ShardedSimulation sharded(scn, shards);
    sharded.run();
    const auto& st = sharded.stats();
    std::printf("%llu/%llu transfers across %zu domains; %llu cross-shard msgs, "
                "%llu barriers, stall fraction %.3f\n",
                static_cast<unsigned long long>(st.transfers_completed),
                static_cast<unsigned long long>(scn.total_transfers()),
                sharded.partition().domain_count(),
                static_cast<unsigned long long>(st.messages),
                static_cast<unsigned long long>(st.barriers), st.stall_fraction());
    std::printf("chains: %llu granted, %llu rejected of %llu requested\n",
                static_cast<unsigned long long>(st.chains_granted),
                static_cast<unsigned long long>(st.chains_rejected),
                static_cast<unsigned long long>(st.chains_requested));
    std::printf("digest: %s\n", sharded.digest().c_str());
    for (const auto& v : sharded.violations()) {
      std::fprintf(stderr, "INVARIANT VIOLATION: %s\n", v.c_str());
    }
    if (!digest_path.empty()) {
      std::ofstream out(digest_path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", digest_path.c_str());
        return 1;
      }
      out << sharded.digest() << '\n';
      std::printf("digest -> %s\n", digest_path.c_str());
    }
    return sharded.violations().empty() ? 0 : 1;
  }

  return usage(argv[0]);
}
