// gridvc-serve: the admission front-end as a wall-clock daemon.
//
//   gridvc-serve [--socket PATH] [--test-clock] [--time-scale X]
//                [--tenants N] [--max-active N] [--idle-timeout S]
//                [--rate R] [--quota-bytes B] [--metrics-out FILE]
//   gridvc-serve --client --socket PATH --script FILE
//   gridvc-serve --self-test
//
// Server mode binds a unix-domain socket (a leading '@' selects the
// Linux abstract namespace), builds a small two-DTN testbed with a
// TransferService behind the multi-tenant FrontEnd, and serves the
// newline-JSON wire protocol (src/frontend/wire.hpp) until SIGTERM.
// Tenants are named t1..tN with weights 1..N. --test-clock swaps the
// steady clock for a virtual one the handler jumps between deadlines —
// sim hours per wall millisecond, same code path; --time-scale maps X
// sim seconds to each wall second on the real clock.
//
// Client mode connects and replays a script: each line is either a raw
// JSON request (sent verbatim) or a directive —
//   !waitdone <session> <ticket>   poll until the ticket is terminal
//   !expect <substring>            require the last response to contain it
// Responses are echoed to stdout. Exits nonzero on socket errors or a
// failed !expect.
//
// --self-test runs server and client in one process (daemon on a
// background thread, scripted client on main), raises SIGTERM, and
// verifies the daemon drains clean — the in-binary version of the CI
// daemon smoke (tests/cli_daemon_smoke.cmake runs the two-process one).
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "frontend/admission.hpp"
#include "frontend/daemon.hpp"
#include "frontend/wall_clock.hpp"
#include "gridftp/server.hpp"
#include "gridftp/transfer_engine.hpp"
#include "gridftp/transfer_service.hpp"
#include "gridftp/usage_stats.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

using namespace gridvc;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--socket PATH] [--test-clock] [--time-scale X]\n"
               "          [--tenants N] [--max-active N] [--idle-timeout S]\n"
               "          [--rate R] [--quota-bytes B] [--metrics-out FILE]\n"
               "       %s --client --socket PATH --script FILE\n"
               "       %s --self-test\n"
               "  --socket       unix socket path; '@name' = abstract namespace\n"
               "  --test-clock   virtual wall clock (jumps between deadlines)\n"
               "  --time-scale   sim seconds per wall second (real clock)\n"
               "  --tenants      tenants t1..tN, weights 1..N (default 3)\n"
               "  --max-active   backend active-task slots (default 4)\n"
               "  --idle-timeout reap sessions idle longer than S sim seconds\n"
               "  --rate         per-tenant submissions/sec token rate (0 = off)\n"
               "  --quota-bytes  per-tenant queued-bytes quota (0 = off)\n"
               "  --metrics-out  write a Prometheus metrics dump on exit\n"
               "  --client       connect and replay --script (JSONL + !directives)\n"
               "  --self-test    in-process server+client round trip, then SIGTERM\n",
               argv0, argv0, argv0);
  return 2;
}

/// Everything the served simulation is made of, kept alive together.
struct ServedStack {
  sim::Simulator sim;
  net::Topology topo;
  gridftp::ServerConfig src_cfg, dst_cfg;
  std::unique_ptr<gridftp::Server> source, sink;
  std::unique_ptr<net::Network> network;
  gridftp::UsageStatsCollector collector;
  std::unique_ptr<gridftp::TransferEngine> engine;
  std::unique_ptr<gridftp::TransferService> service;
  std::unique_ptr<frontend::FrontEnd> front;
  gridftp::TransferSpec tmpl;
};

std::unique_ptr<ServedStack> build_stack(std::size_t tenants, int max_active,
                                         Seconds idle_timeout, double rate,
                                         Bytes quota_bytes) {
  auto s = std::make_unique<ServedStack>();
  const auto src = s->topo.add_node("src-dtn", net::NodeKind::kHost);
  const auto edge_a = s->topo.add_node("edge-a", net::NodeKind::kRouter);
  const auto edge_b = s->topo.add_node("edge-b", net::NodeKind::kRouter);
  const auto dst = s->topo.add_node("dst-dtn", net::NodeKind::kHost);
  const auto [src_a, a_src] = s->topo.add_duplex_link(src, edge_a, gbps(10), 0.0005);
  const auto [a_b, b_a] = s->topo.add_duplex_link(edge_a, edge_b, gbps(10), 0.01);
  const auto [b_dst, dst_b] = s->topo.add_duplex_link(edge_b, dst, gbps(10), 0.0005);
  (void)a_src; (void)b_a; (void)dst_b;
  s->network = std::make_unique<net::Network>(s->sim, s->topo);

  s->src_cfg.name = "src-dtn";
  s->src_cfg.id = 1;
  s->src_cfg.nic_rate = gbps(10);
  s->source = std::make_unique<gridftp::Server>(s->src_cfg);
  s->dst_cfg = s->src_cfg;
  s->dst_cfg.name = "dst-dtn";
  s->dst_cfg.id = 2;
  s->sink = std::make_unique<gridftp::Server>(s->dst_cfg);

  gridftp::TransferEngineConfig ecfg;
  ecfg.server_noise_sigma = 0.0;  // daemon runs are reproducible
  s->engine = std::make_unique<gridftp::TransferEngine>(*s->network, s->collector,
                                                        ecfg, Rng(42));

  gridftp::TransferServiceConfig scfg;
  scfg.max_active_tasks = max_active;
  scfg.queue_limit = 0;  // all waiting happens in the front-end
  s->service = std::make_unique<gridftp::TransferService>(s->sim, *s->engine, scfg);

  frontend::FrontEndConfig fcfg;
  for (std::size_t i = 1; i <= tenants; ++i) {
    frontend::TenantConfig tc;
    tc.name = "t" + std::to_string(i);
    tc.weight = static_cast<double>(i);
    tc.submit_rate = rate;
    tc.max_queued_bytes = quota_bytes;
    fcfg.tenants.push_back(tc);
  }
  fcfg.session_idle_timeout = idle_timeout;
  fcfg.reap_interval = idle_timeout > 0.0 ? idle_timeout / 2.0 : 30.0;
  s->front = std::make_unique<frontend::FrontEnd>(s->sim, *s->service, fcfg);

  s->tmpl.src = {s->source.get(), gridftp::IoMode::kDiskRead};
  s->tmpl.dst = {s->sink.get(), gridftp::IoMode::kDiskWrite};
  s->tmpl.path = {src_a, a_b, b_dst};
  s->tmpl.rtt = 2.0 * s->topo.path_delay(s->tmpl.path);
  s->tmpl.remote_host = "dst-dtn";
  return s;
}

// ---------------------------------------------------------------- client

int client_connect(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(addr.sun_path)) return -1;
  socklen_t len;
  if (path[0] == '@') {
    std::memcpy(addr.sun_path + 1, path.data() + 1, path.size() - 1);
    len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) + path.size());
  } else {
    std::memcpy(addr.sun_path, path.data(), path.size());
    len = static_cast<socklen_t>(offsetof(sockaddr_un, sun_path) + path.size() + 1);
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), len) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_line(int fd, const std::string& line) {
  const std::string out = line + "\n";
  return ::send(fd, out.data(), out.size(), MSG_NOSIGNAL) ==
         static_cast<ssize_t>(out.size());
}

bool recv_line(int fd, std::string& pending, std::string& line) {
  std::size_t pos;
  while ((pos = pending.find('\n')) == std::string::npos) {
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) return false;
    pending.append(chunk, static_cast<std::size_t>(n));
  }
  line = pending.substr(0, pos);
  pending.erase(0, pos + 1);
  return true;
}

/// Replay a script from `in` against the socket. Lines: JSON requests,
/// '#' comments, !waitdone, !expect. Echoes responses to `out`.
int run_client_script(int fd, std::istream& in, std::FILE* out) {
  std::string pending, line, last_response;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("!waitdone ", 0) == 0) {
      std::istringstream d(line.substr(10));
      std::uint64_t session = 0, ticket = 0;
      d >> session >> ticket;
      while (true) {
        std::ostringstream poll;
        poll << "{\"op\":\"poll\",\"session\":" << session
             << ",\"ticket\":" << ticket << "}";
        if (!send_line(fd, poll.str()) || !recv_line(fd, pending, last_response)) {
          std::fprintf(stderr, "gridvc-serve: connection lost in !waitdone\n");
          return 1;
        }
        if (last_response.find("\"state\":\"queued\"") == std::string::npos &&
            last_response.find("\"state\":\"dispatched\"") == std::string::npos) {
          break;
        }
      }
      std::fprintf(out, "%s\n", last_response.c_str());
      continue;
    }
    if (line.rfind("!expect ", 0) == 0) {
      const std::string needle = line.substr(8);
      if (last_response.find(needle) == std::string::npos) {
        std::fprintf(stderr, "gridvc-serve: expected '%s' in '%s'\n",
                     needle.c_str(), last_response.c_str());
        return 1;
      }
      continue;
    }
    if (!send_line(fd, line) || !recv_line(fd, pending, last_response)) {
      std::fprintf(stderr, "gridvc-serve: connection lost\n");
      return 1;
    }
    std::fprintf(out, "%s\n", last_response.c_str());
  }
  return 0;
}

// ------------------------------------------------------------- self-test

int self_test() {
  // No idle reaping here: a virtual clock jumps through idle sim time
  // between client requests, so any finite timeout would reap the
  // session mid-script. Reap behavior is covered in sim time by
  // test_frontend.
  auto stack = build_stack(/*tenants=*/2, /*max_active=*/2,
                           /*idle_timeout=*/0.0, /*rate=*/0.0,
                           /*quota_bytes=*/0);
  frontend::TestWallClock clock;
  frontend::DaemonConfig dcfg;
  dcfg.socket_path = "@gridvc-serve-selftest-" + std::to_string(::getpid());
  dcfg.transfer_template = stack->tmpl;
  frontend::Daemon daemon(stack->sim, *stack->front, clock, dcfg);
  frontend::Daemon::install_sigterm_handler();

  std::uint64_t handled = 0;
  std::thread server([&] { handled = daemon.run(); });

  int fd = -1;
  for (int i = 0; i < 200 && fd < 0; ++i) {
    fd = client_connect(dcfg.socket_path);
    if (fd < 0) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (fd < 0) {
    std::fprintf(stderr, "self-test: could not connect\n");
    daemon.request_shutdown();
    server.join();
    return 1;
  }
  const char* script =
      "{\"op\":\"ping\"}\n"
      "{\"op\":\"connect\",\"tenant\":\"t1\"}\n"
      "!expect \"session\":1\n"
      "{\"op\":\"submit\",\"session\":1,\"label\":\"st\",\"files\":[1048576],"
      "\"key\":\"k1\"}\n"
      "!expect \"ticket\":1\n"
      "{\"op\":\"submit\",\"session\":1,\"label\":\"st\",\"files\":[1048576],"
      "\"key\":\"k1\"}\n"
      "!expect \"duplicate\":true\n"
      "!waitdone 1 1\n"
      "!expect \"task_state\":\"succeeded\"\n"
      "{\"op\":\"stats\",\"tenant\":\"t1\"}\n"
      "!expect \"completed\":1\n"
      "{\"op\":\"disconnect\",\"session\":1}\n";
  std::istringstream in(script);
  const int rc = run_client_script(fd, in, stdout);
  ::close(fd);
  std::raise(SIGTERM);
  server.join();
  if (rc != 0) return rc;
  if (!stack->front->quiescent()) {
    std::fprintf(stderr, "self-test: front-end did not drain\n");
    return 1;
  }
  std::printf("self-test ok: %llu requests, drained clean\n",
              static_cast<unsigned long long>(handled));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "@gridvc-serve";
  std::string script_path, metrics_path;
  bool test_clock = false, client = false, selftest = false;
  double time_scale = 1.0, rate = 0.0;
  Seconds idle_timeout = 0.0;
  std::size_t tenants = 3;
  int max_active = 4;
  Bytes quota_bytes = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg == "--test-clock") {
      test_clock = true;
    } else if (arg == "--time-scale" && i + 1 < argc) {
      time_scale = std::strtod(argv[++i], nullptr);
    } else if (arg == "--tenants" && i + 1 < argc) {
      tenants = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--max-active" && i + 1 < argc) {
      max_active = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (arg == "--idle-timeout" && i + 1 < argc) {
      idle_timeout = std::strtod(argv[++i], nullptr);
    } else if (arg == "--rate" && i + 1 < argc) {
      rate = std::strtod(argv[++i], nullptr);
    } else if (arg == "--quota-bytes" && i + 1 < argc) {
      quota_bytes = static_cast<Bytes>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--script" && i + 1 < argc) {
      script_path = argv[++i];
    } else if (arg == "--client") {
      client = true;
    } else if (arg == "--self-test") {
      selftest = true;
    } else {
      return usage(argv[0]);
    }
  }

  if (selftest) return self_test();

  if (client) {
    if (script_path.empty()) return usage(argv[0]);
    int fd = -1;
    for (int i = 0; i < 200 && fd < 0; ++i) {
      fd = client_connect(socket_path);
      if (fd < 0) std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    if (fd < 0) {
      std::fprintf(stderr, "gridvc-serve: cannot connect to '%s'\n",
                   socket_path.c_str());
      return 1;
    }
    std::ifstream in(script_path);
    if (!in) {
      std::fprintf(stderr, "gridvc-serve: cannot read '%s'\n", script_path.c_str());
      return 1;
    }
    const int rc = run_client_script(fd, in, stdout);
    ::close(fd);
    return rc;
  }

  if (tenants == 0 || max_active <= 0 || time_scale <= 0.0) return usage(argv[0]);
  auto stack = build_stack(tenants, max_active, idle_timeout, rate, quota_bytes);
  frontend::SteadyWallClock steady;
  frontend::TestWallClock virt;
  frontend::WallClock& clock =
      test_clock ? static_cast<frontend::WallClock&>(virt) : steady;
  frontend::DaemonConfig dcfg;
  dcfg.socket_path = socket_path;
  dcfg.time_scale = time_scale;
  dcfg.transfer_template = stack->tmpl;
  frontend::Daemon daemon(stack->sim, *stack->front, clock, dcfg);
  frontend::Daemon::install_sigterm_handler();
  std::fprintf(stderr, "gridvc-serve: listening on %s (%s clock, scale %g)\n",
               socket_path.c_str(), test_clock ? "test" : "steady", time_scale);
  const std::uint64_t handled = daemon.run();
  std::fprintf(stderr, "gridvc-serve: drained after %llu requests (quiescent=%d)\n",
               static_cast<unsigned long long>(handled),
               stack->front->quiescent() ? 1 : 0);
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    obs::write_prometheus(out, stack->sim.obs().registry().snapshot());
  }
  return stack->front->quiescent() ? 0 : 1;
}
