// gridvc-chaos: seeded chaos batteries over the full stack.
//
//   gridvc-chaos [--seed N] [--replications N] [--threads N]
//                [--tasks N] [--queue-limit N] [--tenants N]
//                [--policy reject-new|shed-oldest|priority]
//                [--service-crash-at S] [--sabotage] [--shrink]
//                [--digest-out FILE] [--trace-out FILE.jsonl]
//                [--profile-out FILE.json] [--flight-out FILE.json]
//
// Each replication generates a fault schedule (link faults, server
// crashes, IDC outages) from its seed, replays it against the managed
// workload, and audits the cross-layer invariants (byte conservation,
// orphan circuits, unresolved aborts, gauge drain, trace/metrics
// consistency). Exit is nonzero when any replication violates an
// invariant.
//
// --digest-out writes one deterministic digest line per replication;
// runs with different --threads must produce byte-identical files
// (this is the determinism check CI performs).
//
// --sabotage flips the contract: a deliberate trace/metrics
// inconsistency is injected on every server-down window, so every
// replication that contains a server crash MUST fail — the tool exits
// nonzero if the harness misses it. Combine with --shrink to ddmin the
// first failing schedule down to a 1-minimal window set.
//
// --profile-out enables the zone profiler and writes a Chrome
// trace-event JSON profile (inspect via gridvc-profile). --flight-out
// arms the flight recorder: the first invariant violation (or
// crash_and_recover) dumps the recent trace-event/zone history to FILE.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/profile_io.hpp"
#include "obs/trace.hpp"
#include "recovery/fault_schedule.hpp"
#include "shard/sharded_simulation.hpp"
#include "workload/chaos.hpp"
#include "workload/federation.hpp"

using namespace gridvc;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seed N] [--replications N] [--threads N]\n"
               "          [--tasks N] [--interarrival S] [--queue-limit N] [--tenants N]\n"
               "          [--policy reject-new|shed-oldest|priority]\n"
               "          [--service-crash-at S] [--malleable] [--sabotage] [--shrink]\n"
               "          [--digest-out FILE] [--trace-out FILE.jsonl]\n"
               "          [--profile-out FILE.json] [--flight-out FILE.json]\n"
               "  --replications     seeds seed..seed+N-1, run in parallel\n"
               "  --tenants          route submissions through the multi-tenant\n"
               "                     admission front-end (N weighted tenants;\n"
               "                     adds isolation/no-starvation invariants)\n"
               "  --service-crash-at crash + journal-recover the service at S\n"
               "  --malleable        request circuits as malleable (shaped\n"
               "                     volume-preserving profiles)\n"
               "  --sabotage         inject a known invariant violation; the\n"
               "                     run fails unless the harness catches it\n"
               "  --shrink           ddmin the first failing schedule\n"
               "  --digest-out       one digest line per replication (must be\n"
               "                     identical across --threads)\n"
               "  --trace-out        JSONL trace (single replication only)\n"
               "  --profile-out      zone profile as Chrome trace-event JSON\n"
               "  --flight-out       arm the flight recorder; invariant\n"
               "                     failures dump recent history to FILE\n"
               "  --shards N         run the sharded multi-domain federation\n"
               "                     battery on N executor lanes instead of the\n"
               "                     classic battery; digests are shard-count\n"
               "                     invariant (compare --shards 1 vs N files)\n",
               argv0);
  return 2;
}

const char* kind_name(recovery::FaultTargetKind kind) {
  switch (kind) {
    case recovery::FaultTargetKind::kLink: return "link";
    case recovery::FaultTargetKind::kServer: return "server";
    case recovery::FaultTargetKind::kIdc: return "idc";
  }
  return "?";
}

void print_schedule(const recovery::FaultSchedule& schedule) {
  for (const auto& w : schedule.windows) {
    std::printf("  %-6s target=%llu down=%.3f up=%.3f\n", kind_name(w.kind),
                static_cast<unsigned long long>(w.target), w.down_at, w.up_at);
  }
}

}  // namespace

int main(int argc, char** argv) {
  workload::ChaosConfig config;
  std::uint64_t seed = 1;
  std::size_t replications = 1;
  unsigned shards = 0;  // > 0 selects the sharded federation battery
  bool shrink = false;
  std::string digest_path, trace_path, profile_path, flight_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed" && i + 1 < argc) {
      seed = static_cast<std::uint64_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--replications" && i + 1 < argc) {
      replications = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--threads" && i + 1 < argc) {
      exec::set_default_threads(
          static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10)));
    } else if (arg == "--tasks" && i + 1 < argc) {
      config.task_count = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--interarrival" && i + 1 < argc) {
      config.task_interarrival = std::strtod(argv[++i], nullptr);
    } else if (arg == "--tenants" && i + 1 < argc) {
      config.tenants = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--queue-limit" && i + 1 < argc) {
      config.queue_limit = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg == "--policy" && i + 1 < argc) {
      const std::string policy = argv[++i];
      if (policy == "reject-new") {
        config.overload_policy = gridftp::OverloadPolicy::kRejectNew;
      } else if (policy == "shed-oldest") {
        config.overload_policy = gridftp::OverloadPolicy::kShedOldest;
      } else if (policy == "priority") {
        config.overload_policy = gridftp::OverloadPolicy::kPriority;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--service-crash-at" && i + 1 < argc) {
      config.service_crash_at = std::strtod(argv[++i], nullptr);
    } else if (arg == "--malleable") {
      config.malleable_reservations = true;
    } else if (arg == "--sabotage") {
      config.sabotage = true;
    } else if (arg == "--shrink") {
      shrink = true;
    } else if (arg == "--shards" && i + 1 < argc) {
      shards = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--digest-out" && i + 1 < argc) {
      digest_path = argv[++i];
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--profile-out" && i + 1 < argc) {
      profile_path = argv[++i];
    } else if (arg == "--flight-out" && i + 1 < argc) {
      flight_path = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }
  if (replications == 0) return usage(argv[0]);

  if (shards > 0) {
    // Sharded federation battery: one full multi-domain run per seed.
    // Every run must drain clean, and the digest file must be identical
    // whatever --shards was — CI diffs a --shards 1 file against a
    // --shards 4 file.
    obs::ProfileScope fed_profile;
    if (!profile_path.empty()) fed_profile.arm(profile_path);
    std::fprintf(stderr,
                 "sharded federation battery: %zu replication(s), seeds %llu..%llu, "
                 "%u shard lane(s)\n",
                 replications, static_cast<unsigned long long>(seed),
                 static_cast<unsigned long long>(seed + replications - 1), shards);
    workload::FederationConfig fed;
    fed.sites = 8;
    fed.hosts_per_site = 2;
    fed.users = 96;
    fed.transfers_per_user = 2;
    fed.file_size = 8ULL << 20;
    fed.arrival_horizon = 60.0;
    fed.think_time = 2.0;
    fed.remote_fraction = 0.6;
    fed.vc_fraction = 0.4;
    if (config.task_count > 0) fed.users = config.task_count;
    std::size_t fed_failing = 0;
    std::vector<std::string> digests;
    for (std::size_t i = 0; i < replications; ++i) {
      const auto scenario = workload::build_federation(fed, seed + i);
      shard::ShardedSimulation sharded(scenario, shards);
      sharded.run();
      digests.push_back(sharded.digest());
      if (!sharded.violations().empty()) {
        ++fed_failing;
        std::printf("seed %llu: %zu violation(s)\n",
                    static_cast<unsigned long long>(seed + i),
                    sharded.violations().size());
        for (const auto& v : sharded.violations()) std::printf("  %s\n", v.c_str());
      }
    }
    if (!digest_path.empty()) {
      std::ofstream out(digest_path);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", digest_path.c_str());
        return 1;
      }
      for (const auto& d : digests) out << d << '\n';
      std::printf("%zu digest line(s) -> %s\n", digests.size(), digest_path.c_str());
    }
    std::printf("%zu/%zu federation replications clean\n", replications - fed_failing,
                replications);
    return fed_failing == 0 ? 0 : 1;
  }

  obs::ProfileScope profile;
  if (!profile_path.empty()) profile.arm(profile_path);
  if (!flight_path.empty()) obs::FlightRecorder::instance().arm(flight_path);

  std::ofstream trace_stream;
  std::unique_ptr<obs::JsonlTraceSink> trace_sink;
  if (!trace_path.empty()) {
    if (replications != 1) {
      std::fprintf(stderr, "--trace-out requires --replications 1\n");
      return 2;
    }
    trace_stream.open(trace_path);
    if (!trace_stream) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    trace_sink = std::make_unique<obs::JsonlTraceSink>(trace_stream);
    config.trace_sink = trace_sink.get();
  }

  std::fprintf(stderr, "chaos battery: %zu replication(s), seeds %llu..%llu%s\n",
               replications, static_cast<unsigned long long>(seed),
               static_cast<unsigned long long>(seed + replications - 1),
               config.sabotage ? " [sabotage]" : "");

  std::vector<workload::ChaosResult> results;
  if (replications == 1) {
    results.push_back(workload::run_chaos(config, seed));
  } else {
    results = workload::run_chaos_battery(config, seed, replications);
  }

  if (!digest_path.empty()) {
    std::ofstream out(digest_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", digest_path.c_str());
      return 1;
    }
    for (const auto& r : results) out << r.digest << '\n';
    std::printf("%zu digest line(s) -> %s\n", results.size(), digest_path.c_str());
  }

  std::size_t failing = 0;
  std::uint64_t crashes = 0, outages = 0, shed = 0, recovered = 0;
  std::optional<std::uint64_t> first_failing_seed;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    crashes += r.server_crashes;
    outages += r.idc_outages;
    shed += r.tasks_shed;
    recovered += r.tasks_recovered;
    if (!r.ok()) {
      ++failing;
      if (!first_failing_seed) first_failing_seed = seed + i;
      std::printf("seed %llu: %zu violation(s)\n",
                  static_cast<unsigned long long>(seed + i), r.violations.size());
      for (const auto& v : r.violations) {
        std::printf("  [%s] %s\n", v.invariant.c_str(), v.detail.c_str());
      }
    }
  }
  std::printf("%zu/%zu replications clean; %llu server crashes, %llu IDC outages, "
              "%llu tasks shed, %llu tasks recovered\n",
              results.size() - failing, results.size(),
              static_cast<unsigned long long>(crashes),
              static_cast<unsigned long long>(outages),
              static_cast<unsigned long long>(shed),
              static_cast<unsigned long long>(recovered));

  if (!flight_path.empty()) {
    auto& recorder = obs::FlightRecorder::instance();
    std::fprintf(stderr, "flight recorder: %llu dump(s) -> %s\n",
                 static_cast<unsigned long long>(recorder.dump_count()),
                 flight_path.c_str());
    recorder.disarm();
  }

  if (shrink && first_failing_seed) {
    std::fprintf(stderr, "shrinking the seed-%llu schedule...\n",
                 static_cast<unsigned long long>(*first_failing_seed));
    workload::ChaosConfig shrink_cfg = config;
    shrink_cfg.trace_sink = nullptr;
    const auto minimal = workload::shrink_chaos_schedule(shrink_cfg, *first_failing_seed);
    std::printf("minimal failing schedule: %zu window(s)\n", minimal.windows.size());
    print_schedule(minimal);
  }

  if (config.sabotage) {
    // Every replication whose schedule contains a server crash must have
    // been flagged; if the harness let one through, that is the failure.
    std::size_t expected = 0;
    for (const auto& r : results) {
      if (r.schedule.count(recovery::FaultTargetKind::kServer) > 0) ++expected;
    }
    if (failing < expected) {
      std::fprintf(stderr, "sabotage NOT caught: %zu/%zu poisoned runs flagged\n",
                   failing, expected);
      return 1;
    }
    std::printf("sabotage caught in all %zu poisoned replication(s)\n", expected);
    return 0;
  }
  return failing == 0 ? 0 : 1;
}
