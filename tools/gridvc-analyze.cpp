// gridvc-analyze: run the paper's analyses on a GridFTP log CSV, and/or
// replay a structured trace into per-transfer / per-circuit timelines.
//
//   gridvc-analyze [--gap SECONDS] [--setup SECONDS] [--classes]
//                  [--burstiness] [--trace FILE.jsonl]
//                  [--metrics-out FILE] [FILE]
//
// With a log FILE: prints transfer/session characterization (Tables
// I/II style), the session census (Table III style), VC suitability
// (Table IV style), and optionally the elephant/tortoise/cheetah
// classification.
//
// With --trace: reads the JSONL event stream a simulation emitted
// (gridvc-simulate --trace-out) and reconstructs each transfer's
// submit -> start -> finish timeline with queue-wait attribution and
// each circuit's request -> grant -> activate -> release lifecycle with
// setup-delay attribution.
//
// --metrics-out writes the tool's own analysis metrics
// (gridvc_analyze_*) in Prometheus text format (CSV when FILE ends
// ".csv").
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "analysis/burstiness.hpp"
#include "analysis/flow_classification.hpp"
#include "analysis/report.hpp"
#include "analysis/session_grouping.hpp"
#include "analysis/throughput_analysis.hpp"
#include "analysis/vc_feasibility.hpp"
#include "common/strings.hpp"
#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "stats/table.hpp"

using namespace gridvc;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--gap SECONDS] [--setup SECONDS] [--classes]\n"
               "          [--burstiness] [--trace FILE.jsonl] [--metrics-out FILE]\n"
               "          [--threads N] [FILE]\n"
               "  --gap         session gap parameter g (default 60)\n"
               "  --threads     execution-pool width; 0 = hardware (results are\n"
               "                identical at any value)\n"
               "  --setup       VC setup delay to evaluate (default 60)\n"
               "  --classes     also print the flow-class taxonomy\n"
               "  --burstiness  also print session burstiness statistics\n"
               "  --trace       replay a JSONL trace into timelines\n"
               "  --metrics-out write gridvc_analyze_* metrics (CSV when .csv)\n",
               argv0);
  return 2;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

const char* reject_reason_name(std::uint64_t reason) {
  switch (reason) {
    case 0: return "no-route";
    case 1: return "no-bandwidth";
    case 2: return "invalid";
    default: return "unknown";
  }
}

int replay_trace(const std::string& path, obs::MetricsRegistry& reg) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::vector<obs::TraceEvent> events;
  try {
    events = obs::read_trace_jsonl(in);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace parse error: %s\n", e.what());
    return 1;
  }
  reg.add(reg.counter("gridvc_analyze_trace_events", "Trace events replayed"),
          events.size());

  const obs::Timelines tl = obs::build_timelines(events);
  reg.add(reg.counter("gridvc_analyze_trace_transfers",
                      "Transfers reconstructed from the trace"),
          tl.transfers.size());
  reg.add(reg.counter("gridvc_analyze_trace_circuits",
                      "Circuit lifecycles reconstructed from the trace"),
          tl.circuits.size());
  const obs::MetricId queue_wait_hist = reg.histogram(
      "gridvc_analyze_trace_queue_wait_seconds", {0.1, 0.5, 1, 5, 15, 60, 300},
      "Queue wait of replayed transfers");

  std::printf("%zu trace events from %s: %zu transfers (%zu finished), "
              "%zu circuit requests\n\n",
              events.size(), path.c_str(), tl.transfers.size(),
              tl.finished_transfers(), tl.circuits.size());

  std::printf("per-transfer timelines (submit -> start -> finish):\n");
  for (const auto& [id, t] : tl.transfers) {
    if (t.started) reg.observe(queue_wait_hist, t.queue_wait);
    if (t.complete()) {
      std::printf("  transfer %llu: submit %.1f s, +%.1f s queue wait, "
                  "finish %.1f s (total %.1f s, %.2f GB, %llu stripes%s)\n",
                  static_cast<unsigned long long>(id), t.submit_time, t.queue_wait,
                  t.finish_time, t.duration(), to_gigabytes(t.bytes),
                  static_cast<unsigned long long>(t.stripes),
                  t.retries > 0 ? ", retried" : "");
    } else {
      std::printf("  transfer %llu: submit %.1f s, %s\n",
                  static_cast<unsigned long long>(id), t.submit_time,
                  t.started ? "still in flight at end of trace" : "never started");
    }
  }

  if (!tl.circuits.empty()) {
    std::printf("\nper-circuit lifecycles (request -> activate -> release):\n");
    for (const auto& [id, c] : tl.circuits) {
      if (c.rejected) {
        std::printf("  circuit %llu: requested %.1f s, REJECTED (%s)\n",
                    static_cast<unsigned long long>(id), c.request_time,
                    reject_reason_name(c.reject_reason));
        continue;
      }
      if (c.activated) {
        std::printf("  circuit %llu: requested %.1f s, active %.1f s "
                    "(setup delay %.1f s, %.1f Gbps)%s\n",
                    static_cast<unsigned long long>(id), c.request_time,
                    c.activate_time, c.setup_delay, to_gbps(c.bandwidth),
                    c.released ? "" : ", never released");
      } else {
        std::printf("  circuit %llu: requested %.1f s, %s\n",
                    static_cast<unsigned long long>(id), c.request_time,
                    c.cancelled ? "cancelled before activation"
                                : "granted but not yet active");
      }
    }
  }
  return 0;
}

int write_metrics_file(const obs::MetricsRegistry& reg, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  const obs::MetricsSnapshot snapshot = reg.snapshot();
  if (ends_with(path, ".csv")) {
    obs::write_csv(out, snapshot);
  } else {
    obs::write_prometheus(out, snapshot);
  }
  std::printf("\nanalysis metrics (%zu) -> %s\n", snapshot.entries.size(), path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  double gap = 60.0;
  double setup = 60.0;
  bool classes = false;
  bool burstiness = false;
  std::string path, trace_path, metrics_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--gap" && i + 1 < argc) {
      gap = std::atof(argv[++i]);
    } else if (arg == "--threads" && i + 1 < argc) {
      exec::set_default_threads(
          static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10)));
    } else if (arg == "--setup" && i + 1 < argc) {
      setup = std::atof(argv[++i]);
    } else if (arg == "--classes") {
      classes = true;
    } else if (arg == "--burstiness") {
      burstiness = true;
    } else if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (path.empty() && trace_path.empty()) return usage(argv[0]);

  // The analyzer keeps its own registry: it is a standalone process with
  // no simulator, and its metrics describe the analysis, not a run.
  obs::MetricsRegistry reg;

  if (!trace_path.empty()) {
    const int rc = replay_trace(trace_path, reg);
    if (rc != 0) return rc;
    if (path.empty()) {
      if (!metrics_path.empty()) return write_metrics_file(reg, metrics_path);
      return 0;
    }
    std::printf("\n");
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  gridftp::TransferLog log;
  try {
    log = gridftp::read_log(in);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 1;
  }
  if (log.empty()) {
    std::fprintf(stderr, "log is empty\n");
    return 1;
  }
  std::printf("%zu transfers read from %s\n\n", log.size(), path.c_str());
  reg.add(reg.counter("gridvc_analyze_transfers_analyzed",
                      "Log records fed to the analyses"),
          log.size());

  const auto sessions = analysis::group_sessions(log, {.gap = gap});
  reg.add(reg.counter("gridvc_analyze_sessions_found",
                      "Sessions the gap-grouping produced"),
          sessions.size());
  const obs::MetricId throughput_hist = reg.histogram(
      "gridvc_analyze_transfer_throughput_mbps",
      {10, 50, 100, 250, 500, 1000, 2500, 5000},
      "Per-transfer achieved throughput of the analyzed log");
  for (const auto& r : log) {
    if (r.duration > 0.0) {
      reg.observe(throughput_hist, to_mbps(achieved_rate(r.size, r.duration)));
    }
  }

  stats::Table characterization("Characterization (g = " + format_fixed(gap, 0) + " s)");
  characterization.set_header(analysis::summary_header("Quantity"));
  characterization.add_row(analysis::summary_row(
      "Session size (MB)", stats::summarize(analysis::session_sizes_megabytes(sessions)),
      1));
  characterization.add_row(analysis::summary_row(
      "Session duration (s)",
      stats::summarize(analysis::session_durations_seconds(sessions)), 1));
  characterization.add_row(analysis::summary_row(
      "Transfer throughput (Mbps)", analysis::throughput_summary_mbps(log), 1));
  std::printf("%s\n", characterization.render().c_str());

  const auto c = analysis::census(sessions);
  std::printf("sessions: %zu (%zu single-transfer, %zu multi; largest holds %zu "
              "transfers; %zu hold >= 100)\n",
              c.total_sessions(), c.single_transfer_sessions, c.multi_transfer_sessions,
              c.max_transfers_in_session, c.sessions_with_100_or_more);

  const auto f = analysis::analyze_vc_feasibility(sessions, log, {.setup_delay = setup});
  std::printf("\nVC suitability at setup = %s s: %s of sessions (%s of transfers) "
              "qualify; min session size %s MB; Q3 reference throughput %s Mbps\n",
              format_fixed(setup, setup < 1.0 ? 2 : 0).c_str(),
              format_percent(f.session_fraction(), 2).c_str(),
              format_percent(f.transfer_fraction(), 2).c_str(),
              format_grouped(to_megabytes(f.min_suitable_size), 1).c_str(),
              format_fixed(to_mbps(f.reference_throughput), 1).c_str());

  if (burstiness) {
    const auto b = analysis::session_burstiness(log, sessions);
    const auto summary = stats::summarize(b);
    std::printf("\nSession burstiness (peak 30s-window rate / mean rate):\n"
                "  median %.2f, mean %.2f, p75 %.2f, max %.2f\n",
                summary.median, summary.mean, summary.q3, summary.max);
  }

  if (classes) {
    const auto thresholds = analysis::quantile_thresholds(log, 0.95);
    const auto masks = analysis::classify(log, thresholds);
    const auto s = analysis::summarize_classification(log, masks);
    std::printf("\nFlow classes (top-5%% per dimension):\n");
    std::printf("  elephants (size)    : %zu\n", s.elephants);
    std::printf("  tortoises (duration): %zu\n", s.tortoises);
    std::printf("  cheetahs (rate)     : %zu\n", s.cheetahs);
    std::printf("  alphas (big & fast) : %zu, carrying %s of all bytes\n", s.alphas,
                format_percent(s.alpha_byte_fraction, 1).c_str());
  }

  if (!metrics_path.empty()) return write_metrics_file(reg, metrics_path);
  return 0;
}
