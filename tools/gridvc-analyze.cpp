// gridvc-analyze: run the paper's analyses on a GridFTP log CSV.
//
//   gridvc-analyze [--gap SECONDS] [--setup SECONDS] [--classes] FILE
//
// Prints: transfer/session characterization (Tables I/II style), the
// session census (Table III style), VC suitability (Table IV style), and
// optionally the elephant/tortoise/cheetah classification.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "analysis/burstiness.hpp"
#include "analysis/flow_classification.hpp"
#include "analysis/report.hpp"
#include "analysis/session_grouping.hpp"
#include "analysis/throughput_analysis.hpp"
#include "analysis/vc_feasibility.hpp"
#include "common/strings.hpp"
#include "stats/table.hpp"

using namespace gridvc;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--gap SECONDS] [--setup SECONDS] [--classes]\n"
               "          [--burstiness] FILE\n"
               "  --gap        session gap parameter g (default 60)\n"
               "  --setup      VC setup delay to evaluate (default 60)\n"
               "  --classes    also print the flow-class taxonomy\n"
               "  --burstiness also print session burstiness statistics\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  double gap = 60.0;
  double setup = 60.0;
  bool classes = false;
  bool burstiness = false;
  std::string path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--gap" && i + 1 < argc) {
      gap = std::atof(argv[++i]);
    } else if (arg == "--setup" && i + 1 < argc) {
      setup = std::atof(argv[++i]);
    } else if (arg == "--classes") {
      classes = true;
    } else if (arg == "--burstiness") {
      burstiness = true;
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  gridftp::TransferLog log;
  try {
    log = gridftp::read_log(in);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "parse error: %s\n", e.what());
    return 1;
  }
  if (log.empty()) {
    std::fprintf(stderr, "log is empty\n");
    return 1;
  }
  std::printf("%zu transfers read from %s\n\n", log.size(), path.c_str());

  const auto sessions = analysis::group_sessions(log, {.gap = gap});
  stats::Table characterization("Characterization (g = " + format_fixed(gap, 0) + " s)");
  characterization.set_header(analysis::summary_header("Quantity"));
  characterization.add_row(analysis::summary_row(
      "Session size (MB)", stats::summarize(analysis::session_sizes_megabytes(sessions)),
      1));
  characterization.add_row(analysis::summary_row(
      "Session duration (s)",
      stats::summarize(analysis::session_durations_seconds(sessions)), 1));
  characterization.add_row(analysis::summary_row(
      "Transfer throughput (Mbps)", analysis::throughput_summary_mbps(log), 1));
  std::printf("%s\n", characterization.render().c_str());

  const auto c = analysis::census(sessions);
  std::printf("sessions: %zu (%zu single-transfer, %zu multi; largest holds %zu "
              "transfers; %zu hold >= 100)\n",
              c.total_sessions(), c.single_transfer_sessions, c.multi_transfer_sessions,
              c.max_transfers_in_session, c.sessions_with_100_or_more);

  const auto f = analysis::analyze_vc_feasibility(sessions, log, {.setup_delay = setup});
  std::printf("\nVC suitability at setup = %s s: %s of sessions (%s of transfers) "
              "qualify; min session size %s MB; Q3 reference throughput %s Mbps\n",
              format_fixed(setup, setup < 1.0 ? 2 : 0).c_str(),
              format_percent(f.session_fraction(), 2).c_str(),
              format_percent(f.transfer_fraction(), 2).c_str(),
              format_grouped(to_megabytes(f.min_suitable_size), 1).c_str(),
              format_fixed(to_mbps(f.reference_throughput), 1).c_str());

  if (burstiness) {
    const auto b = analysis::session_burstiness(log, sessions);
    const auto summary = stats::summarize(b);
    std::printf("\nSession burstiness (peak 30s-window rate / mean rate):\n"
                "  median %.2f, mean %.2f, p75 %.2f, max %.2f\n",
                summary.median, summary.mean, summary.q3, summary.max);
  }

  if (classes) {
    const auto thresholds = analysis::quantile_thresholds(log, 0.95);
    const auto masks = analysis::classify(log, thresholds);
    const auto s = analysis::summarize_classification(log, masks);
    std::printf("\nFlow classes (top-5%% per dimension):\n");
    std::printf("  elephants (size)    : %zu\n", s.elephants);
    std::printf("  tortoises (duration): %zu\n", s.tortoises);
    std::printf("  cheetahs (rate)     : %zu\n", s.cheetahs);
    std::printf("  alphas (big & fast) : %zu, carrying %s of all bytes\n", s.alphas,
                format_percent(s.alpha_byte_fraction, 1).c_str());
  }
  return 0;
}
